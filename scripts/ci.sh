#!/usr/bin/env bash
# CI gate: tier-1 build + ctest, then a bench smoke whose JSON summaries
# are diffed so regressions fail loudly.
#
#   scripts/ci.sh                       # build, test, smoke, self-diff
#   scripts/ci.sh --full                # + static analysis & sanitizer
#                                       #   matrix (see below)
#   BENCH_BASELINE_DIR=path scripts/ci.sh   # additionally diff against
#                                           # a stored baseline
#
# The self-diff runs the (deterministic, seeded) smoke benches twice and
# requires identical summaries -- it catches accidental nondeterminism
# and validates the tools/bench_diff.py pipeline on every run, even when
# no stored baseline exists. With BENCH_BASELINE_DIR set, the first
# smoke pass is also compared against that baseline at a looser
# threshold (override with BENCH_DIFF_THRESHOLD, percent).
#
# Every run also gates performance against the committed bench/baseline/
# snapshot: bench_a7_des_micro (DES kernel throughput),
# bench_telemetry_scale (registry registration rate, delta-scrape
# speedups, sharded-vs-single-map byte identity), bench_scale (fleet
# event throughput + marginal bytes/entity at 10k/100k entities) and
# the bench_a13 history-sampling leg (series-samples/s into the ring,
# exact bytes/window) run into one scratch dir and are diffed in a
# single one-sided pass (throughput keys may drop, and
# bytes_per_entity / bytes_per_window may rise, at most
# BENCH_PERF_THRESHOLD percent, default 40; see docs/performance.md and
# docs/observability.md). The 1M-entity tier runs under --full only.
#
# --full appends the analysis matrix (docs/static_analysis.md):
#   * clang-tidy over src/ (skipped with a notice when not installed)
#   * tools/lint.py project rules, plus a self-test that seeds a rand()
#     call in a scratch tree and requires the linter to catch it
#   * a tsan.supp audit (every suppression needs a reason comment)
#   * a clang -Wthread-safety -Werror=thread-safety build of the whole
#     tree plus tools/tsa_selftest.py (strip-and-flip proof that the
#     Registry/MetricsCollector annotations are load-bearing); skipped
#     with a warning when clang is absent, fatal under CI_TSA=1
#   * scripts/check_format.sh (diff-only; skipped when clang-format is
#     not installed)
#   * an ASan+UBSan build with PROBEMON_CHECKED=ON running the full
#     ctest suite -- every Experiment self-audits its protocol
#     invariants and aborts the test on a violation
#   * a checked DES smoke (bench under the sanitized+checked build)
#   * CI_TSAN=1 additionally runs a thread,undefined build + ctest
# and writes bench_out/analysis_summary.json with machine-readable
# results (invariant violations, tidy warning count, lint findings).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
THRESHOLD="${BENCH_DIFF_THRESHOLD:-15}"

FULL=0
if [[ "${1:-}" == "--full" ]]; then
  FULL=1
  shift
fi

# Short-duration, seeded smoke runs; one DES bench per protocol family.
SMOKE_BENCHES=(
  # t1 needs enough post-warmup samples for >= 2 batch means.
  "bench_t1_sapp_steady --seed=7 --duration=1000 --warmup=200"
  "bench_f5_dcpp_dynamic --seed=7"
  "bench_a5_detection --seed=7"
  # Small fleet tier: its s<N>.events/delivered counts are exact logical
  # tallies, so the determinism self-diff gates the scale path at 0%.
  "bench_scale --entities=5000 --duration=5 --seed=7"
)

echo "==> configure + build (${BUILD})"
cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j >/dev/null

echo "==> tier-1 ctest"
ctest --test-dir "$BUILD" --output-on-failure -j

run_smoke() {
  # $1: scratch dir; benches write bench_out/ relative to cwd.
  local dir="$1"
  mkdir -p "$dir"
  for spec in "${SMOKE_BENCHES[@]}"; do
    # shellcheck disable=SC2086  # intentional word-split of the spec
    set -- $spec
    local bench="$1"; shift
    echo "    $bench $*"
    (cd "$dir" && "$BUILD/bench/$bench" "$@" >/dev/null)
  done
}

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

echo "==> bench smoke (pass 1)"
run_smoke "$SCRATCH/run1"
echo "==> bench smoke (pass 2, same seeds)"
run_smoke "$SCRATCH/run2"

# Wall-clock-derived keys (wall_s, events_per_s, bytes_per_entity) vary
# run to run; the logical counts must not.
echo "==> determinism diff (pass 1 vs pass 2, threshold 0%)"
python3 "$ROOT/tools/bench_diff.py" \
  "$SCRATCH/run1/bench_out" "$SCRATCH/run2/bench_out" --threshold 0 \
  --ignore '(^|\.)(real_time|cpu_time|iterations|items_per_second|peak_rss_bytes)$|wall_s$|events_per_s$|bytes_per_entity$'

if [[ -n "${BENCH_BASELINE_DIR:-}" ]]; then
  echo "==> baseline diff ($BENCH_BASELINE_DIR, threshold ${THRESHOLD}%)"
  python3 "$ROOT/tools/bench_diff.py" \
    "$BENCH_BASELINE_DIR" "$SCRATCH/run1/bench_out" --threshold "$THRESHOLD" \
    --ignore '(^|\.)(real_time|cpu_time|iterations|items_per_second|peak_rss_bytes)$|wall_s$|events_per_s$|bytes_per_entity$'
else
  echo "==> no BENCH_BASELINE_DIR set; skipped stored-baseline diff"
  echo "    (seed one with: cp -r $SCRATCH/run1/bench_out <baseline-dir>)"
fi

# --- perf gate: DES kernel + telemetry scale vs the committed baseline.
# One pass over one scratch dir so bench_diff sees every baseline file
# (a baseline file absent from the current dir is itself a failure).
# One-sided keys (throughput, delta-scrape speedups) may only drop by
# PERF_THRESHOLD percent; machine context and absolute timings are
# ignored as noise. The byte-sized keys and the identity booleans from
# bench_telemetry_scale are deterministic, so they gate exactly.
# Threshold is loose by design -- it exists to catch "someone
# accidentally reverted the timer wheel to a std::function heap" or
# "the delta scrape quietly became a full scrape", not 5% jitter on a
# busy CI box. Refresh the baselines with:
#   (cd /tmp && build/bench/bench_a7_des_micro --benchmark_min_time=0.5 \
#      --benchmark_out=bench/baseline/bench_a7_des_micro.json \
#      --benchmark_out_format=json)
#   (cd /tmp && build/bench/bench_telemetry_scale --series=1000,100000 \
#      --dirty=100 && cp bench_out/bench_telemetry_scale.json \
#      bench/baseline/)
#   (cd /tmp && build/bench/bench_scale --entities=10000,100000 &&
#      cp bench_out/bench_scale.json bench/baseline/)
#   (cd /tmp && build/bench/bench_a13_telemetry_micro \
#      --benchmark_filter=BM_HistorySample --benchmark_min_time=0.2 &&
#      cp bench_out/bench_a13_telemetry_micro.json bench/baseline/)
#   (cd /tmp && build/bench/bench_rt_scale &&
#      cp bench_out/bench_rt_scale.json bench/baseline/)
# bench_rt_scale is the event-loop runtime gate (real UDP, wall-clock
# driven, so it never takes part in the determinism self-diff): its
# probes_per_s / cycles_per_s / cycle_success_rate gate one-sided
# downward, and p99_reply_latency_s one-sided upward at a loose per-key
# 900% override (sub-ms absolute values on a quiet box; the override
# exists to catch "the loop went quadratic", not scheduler jitter).
# Its drop/error counters are informational (0 on a healthy box, but a
# loaded CI host can shed a datagram without that being a regression).
PERF_THRESHOLD="${BENCH_PERF_THRESHOLD:-40}"
echo "==> perf gate: DES kernel + telemetry + fleet scale (one-sided, threshold ${PERF_THRESHOLD}%)"
mkdir -p "$SCRATCH/perf"
"$BUILD/bench/bench_a7_des_micro" --benchmark_min_time=0.2 \
  --benchmark_out="$SCRATCH/perf/bench_a7_des_micro.json" \
  --benchmark_out_format=json >/dev/null 2>&1
(cd "$SCRATCH/perf" &&
   "$BUILD/bench/bench_telemetry_scale" --series=1000,100000 --dirty=100 \
     >/dev/null)
(cd "$SCRATCH/perf" &&
   "$BUILD/bench/bench_scale" --entities=10000,100000 >/dev/null)
(cd "$SCRATCH/perf" &&
   "$BUILD/bench/bench_a13_telemetry_micro" \
     --benchmark_filter=BM_HistorySample --benchmark_min_time=0.2 >/dev/null)
(cd "$SCRATCH/perf" && "$BUILD/bench/bench_rt_scale" >/dev/null)
mv "$SCRATCH/perf/bench_out/bench_telemetry_scale.json" \
   "$SCRATCH/perf/bench_out/bench_scale.json" \
   "$SCRATCH/perf/bench_out/bench_a13_telemetry_micro.json" \
   "$SCRATCH/perf/bench_out/bench_rt_scale.json" "$SCRATCH/perf/"
# s1000.speedup_time is too small-denominator to gate (a ~1ms delta
# scrape); the s100000 ratio is the stable witness of O(changed).
# bench_scale wall_s is absolute timing noise; its events_per_s gates
# one-sided downward and bytes_per_entity one-sided upward.
python3 "$ROOT/tools/bench_diff.py" "$ROOT/bench/baseline" "$SCRATCH/perf" \
  --ignore '(^|\.)(real_time|cpu_time|iterations|items_per_second|peak_rss_bytes)$|^context\.|_us$|speedup_time$|wall_s$|p50_reply_latency_s$|s[0-9]+\.(drops|recv_errors|send_errors|failed_cycles|watches_absent)$' \
  --higher-is-better 'items_per_second$|register_per_s$|speedup_bytes$|s100000\.speedup_time$|events_per_s$|probes_per_s$|cycles_per_s$|cycle_success_rate$' \
  --lower-is-better 'bytes_per_entity$|bytes_per_window$|p99_reply_latency_s$' \
  --max-regress-pct 'p99_reply_latency_s$=900' \
  --threshold "$PERF_THRESHOLD"

if [[ "$FULL" -eq 1 ]]; then
  echo "==> full analysis matrix"
  SUMMARY_DIR="$ROOT/bench_out"
  mkdir -p "$SUMMARY_DIR"

  # --- static: clang-tidy (best-effort where the toolchain lacks clang)
  TIDY_COUNT_FILE="$SCRATCH/tidy_count" "$ROOT/scripts/run_tidy.sh"
  TIDY_COUNT="$(cat "$SCRATCH/tidy_count" 2>/dev/null || echo skipped)"

  # --- static: project lint (fatal on findings)
  echo "==> tools/lint.py"
  python3 "$ROOT/tools/lint.py" --json "$SCRATCH/lint.json"

  # --- static: lint self-test -- seed a rand() call in a scratch tree
  # and require the linter to catch it (guards against the linter
  # silently rotting into a no-op).
  echo "==> lint self-test (seeded rand() must be caught)"
  mkdir -p "$SCRATCH/lint_selftest/src/des"
  cat > "$SCRATCH/lint_selftest/src/des/seeded.cpp" <<'EOF'
#include <cstdlib>
int nondeterministic() { return rand(); }
EOF
  if python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       > "$SCRATCH/lint_selftest.out" 2>&1; then
    echo "    FAILED: linter missed the seeded rand() call" >&2
    cat "$SCRATCH/lint_selftest.out" >&2
    exit 1
  fi
  grep -q 'no-wall-clock' "$SCRATCH/lint_selftest.out" || {
    echo "    FAILED: linter flagged something, but not no-wall-clock" >&2
    cat "$SCRATCH/lint_selftest.out" >&2
    exit 1
  }
  echo "    OK (no-wall-clock finding produced)"

  # --- static: lint self-test for the history/alerts wall-clock zone --
  # a steady_clock read seeded under src/telemetry/history must be
  # caught (sampling is caller-clocked; wall-clock driving lives in
  # runtime::HistoryTicker only).
  echo "==> lint self-test (seeded history clock read must be caught)"
  mkdir -p "$SCRATCH/lint_selftest/src/telemetry/history"
  cat > "$SCRATCH/lint_selftest/src/telemetry/history/clocked.cpp" <<'EOF'
#include <chrono>
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
EOF
  if python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       "$SCRATCH/lint_selftest/src/telemetry/history/clocked.cpp" \
       > "$SCRATCH/lint_selftest_hist.out" 2>&1; then
    echo "    FAILED: linter missed the seeded history clock read" >&2
    cat "$SCRATCH/lint_selftest_hist.out" >&2
    exit 1
  fi
  grep -q 'no-wall-clock' "$SCRATCH/lint_selftest_hist.out" || {
    echo "    FAILED: linter flagged something, but not no-wall-clock" >&2
    cat "$SCRATCH/lint_selftest_hist.out" >&2
    exit 1
  }
  echo "    OK (no-wall-clock finding produced in src/telemetry/history)"

  # --- static: lint self-test for the wall-clock exemption seam --
  # src/des/wall_clock.cpp IS the monotonic-clock adapter (the event
  # loop's time source), so a steady_clock read there must pass, while
  # the identical read in any other src/des file must still be caught.
  # Both directions, so the allowlist can neither rot into "exempts
  # nothing" nor quietly grow into "exempts everything".
  echo "==> lint self-test (wall_clock.cpp exemption is load-bearing)"
  cat > "$SCRATCH/lint_selftest/src/des/wall_clock.cpp" <<'EOF'
#include <chrono>
double monotonic_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
EOF
  if ! python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       "$SCRATCH/lint_selftest/src/des/wall_clock.cpp" \
       > "$SCRATCH/lint_selftest_wc.out" 2>&1; then
    echo "    FAILED: linter flagged the exempt wall_clock.cpp seam" >&2
    cat "$SCRATCH/lint_selftest_wc.out" >&2
    exit 1
  fi
  cp "$SCRATCH/lint_selftest/src/des/wall_clock.cpp" \
     "$SCRATCH/lint_selftest/src/des/clocked.cpp"
  if python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       "$SCRATCH/lint_selftest/src/des/clocked.cpp" \
       > "$SCRATCH/lint_selftest_wc2.out" 2>&1; then
    echo "    FAILED: linter missed a clock read in a non-exempt des file" >&2
    cat "$SCRATCH/lint_selftest_wc2.out" >&2
    exit 1
  fi
  grep -q 'no-wall-clock' "$SCRATCH/lint_selftest_wc2.out" || {
    echo "    FAILED: linter flagged something, but not no-wall-clock" >&2
    cat "$SCRATCH/lint_selftest_wc2.out" >&2
    exit 1
  }
  echo "    OK (exempt seam passes, non-exempt des file still caught)"

  # --- static: lint self-test for the hot-path label rule -- a
  # string-keyed metric lookup seeded under src/des must be caught.
  echo "==> lint self-test (seeded string-label lookup must be caught)"
  cat > "$SCRATCH/lint_selftest/src/des/hot_labels.cpp" <<'EOF'
#include "telemetry/registry.hpp"
void on_event(probemon::telemetry::Registry& r) {
  r.counter("probes_total", "", {{"device", "d1"}}).inc();
}
EOF
  if python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       > "$SCRATCH/lint_selftest2.out" 2>&1; then
    echo "    FAILED: linter missed the seeded string-label lookup" >&2
    cat "$SCRATCH/lint_selftest2.out" >&2
    exit 1
  fi
  grep -q 'no-string-labels' "$SCRATCH/lint_selftest2.out" || {
    echo "    FAILED: linter flagged something, but not no-string-labels" >&2
    cat "$SCRATCH/lint_selftest2.out" >&2
    exit 1
  }
  echo "    OK (no-string-labels finding produced)"

  # --- static: lint self-test for the hot-path allocation rule -- a
  # make_unique seeded into a probe-cycle file must be caught.
  echo "==> lint self-test (seeded hot-path allocation must be caught)"
  mkdir -p "$SCRATCH/lint_selftest/src/core"
  cat > "$SCRATCH/lint_selftest/src/core/probe_cycle.cpp" <<'EOF'
#include <memory>
int* per_event_alloc() { return std::make_unique<int>(7).release(); }
EOF
  if python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       > "$SCRATCH/lint_selftest3.out" 2>&1; then
    echo "    FAILED: linter missed the seeded hot-path allocation" >&2
    cat "$SCRATCH/lint_selftest3.out" >&2
    exit 1
  fi
  grep -q 'no-hot-path-alloc' "$SCRATCH/lint_selftest3.out" || {
    echo "    FAILED: linter flagged something, but not no-hot-path-alloc" >&2
    cat "$SCRATCH/lint_selftest3.out" >&2
    exit 1
  }
  echo "    OK (no-hot-path-alloc finding produced)"

  # --- static: lint self-test for the scenario callback rule -- a
  # std::function seeded under src/scenario must be caught.
  echo "==> lint self-test (seeded scenario std::function must be caught)"
  mkdir -p "$SCRATCH/lint_selftest/src/scenario"
  cat > "$SCRATCH/lint_selftest/src/scenario/hook.cpp" <<'EOF'
#include <functional>
std::function<void()> hook;
EOF
  if python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       > "$SCRATCH/lint_selftest4.out" 2>&1; then
    echo "    FAILED: linter missed the seeded scenario std::function" >&2
    cat "$SCRATCH/lint_selftest4.out" >&2
    exit 1
  fi
  grep -q 'no-std-function' "$SCRATCH/lint_selftest4.out" || {
    echo "    FAILED: linter flagged something, but not no-std-function" >&2
    cat "$SCRATCH/lint_selftest4.out" >&2
    exit 1
  }
  echo "    OK (no-std-function finding produced)"

  # --- static: lint self-test for the annotated-locks rule -- a raw
  # std::mutex seeded under src/runtime must be caught (all of src/
  # synchronizes through the TSA-annotated util::Mutex wrappers).
  echo "==> lint self-test (seeded raw std::mutex must be caught)"
  mkdir -p "$SCRATCH/lint_selftest/src/runtime"
  cat > "$SCRATCH/lint_selftest/src/runtime/raw_lock.cpp" <<'EOF'
#include <mutex>
std::mutex raw_mutex;
EOF
  if python3 "$ROOT/tools/lint.py" --root "$SCRATCH/lint_selftest" \
       "$SCRATCH/lint_selftest/src/runtime/raw_lock.cpp" \
       > "$SCRATCH/lint_selftest5.out" 2>&1; then
    echo "    FAILED: linter missed the seeded raw std::mutex" >&2
    cat "$SCRATCH/lint_selftest5.out" >&2
    exit 1
  fi
  grep -q 'annotated-locks' "$SCRATCH/lint_selftest5.out" || {
    echo "    FAILED: linter flagged something, but not annotated-locks" >&2
    cat "$SCRATCH/lint_selftest5.out" >&2
    exit 1
  }
  echo "    OK (annotated-locks finding produced)"

  # --- static: every tsan.supp suppression must carry a reason comment
  # directly above it (stale or unexplained suppressions hide real
  # races; see the satellite audit in docs/static_analysis.md).
  echo "==> tsan.supp audit (every suppression needs a reason comment)"
  python3 - "$ROOT/scripts/tsan.supp" <<'EOF'
import sys
path = sys.argv[1]
prev_comment = False
bad = []
for lineno, raw in enumerate(open(path), start=1):
    line = raw.strip()
    if not line:
        prev_comment = False
        continue
    if line.startswith("#"):
        prev_comment = True
        continue
    if not prev_comment:
        bad.append((lineno, line))
    # A comment block covers every suppression until a blank line.
if bad:
    for lineno, line in bad:
        print(f"    {path}:{lineno}: suppression without a reason "
              f"comment above it: {line}", file=sys.stderr)
    sys.exit(1)
print("    OK (all suppressions documented)")
EOF

  # --- static: formatting, diff-only (advisory skip when absent)
  "$ROOT/scripts/check_format.sh"

  # --- static: clang Thread Safety Analysis leg. A full build with
  # -Wthread-safety promoted to errors, then the strip-and-flip
  # self-test proving the Registry/MetricsCollector annotations are
  # load-bearing (tools/tsa_selftest.py). Needs clang; without it the
  # leg is skipped with a warning, unless CI_TSA=1 demands it.
  CLANG_CXX="${CLANG_CXX:-clang++}"
  TSA_BUILD_STATUS="skipped"
  TSA_SELFTEST_STATUS="skipped"
  if command -v "$CLANG_CXX" >/dev/null 2>&1; then
    TSA_BUILD_DIR="${TSA_BUILD_DIR:-$ROOT/build-tsa}"
    echo "==> clang thread-safety build (-Wthread-safety -Werror=thread-safety, ${TSA_BUILD_DIR})"
    cmake -B "$TSA_BUILD_DIR" -S "$ROOT" \
      -DCMAKE_CXX_COMPILER="$CLANG_CXX" -DPROBEMON_TSA=ON >/dev/null
    cmake --build "$TSA_BUILD_DIR" -j >/dev/null
    TSA_BUILD_STATUS="passed"
    echo "==> tools/tsa_selftest.py (strip-and-flip annotation check)"
    python3 "$ROOT/tools/tsa_selftest.py" --clang "$CLANG_CXX" \
      --json "$SCRATCH/tsa_selftest.json"
    TSA_SELFTEST_STATUS="passed"
  elif [[ "${CI_TSA:-0}" == "1" ]]; then
    echo "ERROR: CI_TSA=1 requests the clang thread-safety leg, but" >&2
    echo "       '$CLANG_CXX' was not found. Install clang or point" >&2
    echo "       CLANG_CXX at a clang++ binary." >&2
    exit 1
  else
    echo "==> clang thread-safety leg skipped ('$CLANG_CXX' not found;"
    echo "    set CLANG_CXX or install clang. CI_TSA=1 makes this fatal)"
  fi

  # --- dynamic: ASan+UBSan build with the invariant auditor armed
  ASAN_BUILD="${ASAN_BUILD_DIR:-$ROOT/build-asan}"
  echo "==> sanitizer matrix: address,undefined + PROBEMON_CHECKED (${ASAN_BUILD})"
  cmake -B "$ASAN_BUILD" -S "$ROOT" \
    -DPROBEMON_SANITIZE=address -DPROBEMON_CHECKED=ON >/dev/null
  cmake --build "$ASAN_BUILD" -j >/dev/null
  ctest --test-dir "$ASAN_BUILD" --output-on-failure -j

  # --- dynamic: lock-order detector smoke. The checked build arms the
  # util::Mutex acquisition hooks; the LockOrder tests include a
  # deliberate ABBA cycle that must abort with both lock names.
  echo "==> lock-order detector smoke (checked build, deliberate ABBA)"
  ctest --test-dir "$ASAN_BUILD" --output-on-failure -j -R 'LockOrder'

  # --- dynamic: checked DES smoke (auditor attached, abort on violation)
  echo "==> checked DES smoke (auditor armed)"
  mkdir -p "$SCRATCH/checked_smoke"
  (cd "$SCRATCH/checked_smoke" &&
     "$ASAN_BUILD/bench/bench_a5_detection" --seed=7 >/dev/null)

  # --- scale: the full 1M-entity SAPP tier (release build; short virtual
  # horizon -- the gate is that a million live entities build, run, and
  # tear down at flat bytes/entity, not a long steady-state number).
  echo "==> bench_scale 1M-entity SAPP tier"
  mkdir -p "$SCRATCH/scale_full"
  (cd "$SCRATCH/scale_full" &&
     "$BUILD/bench/bench_scale" --entities=1000000 --protocols=sapp \
       --duration=2)

  # --- scale: the 100k-endpoint real-time tier (ungated -- wall-clock
  # numbers on a shared box are informational at this size). 100k live
  # endpoints oversubscribe one loop thread at the default 5 cycles/s,
  # so the tier rate-caps each CP at 2/s (d_min=0.5): ~100k probes/s
  # of real UDP with every watch still present at the end.
  echo "==> bench_rt_scale 100k-endpoint tier (d_min=0.5)"
  (cd "$SCRATCH/scale_full" &&
     "$BUILD/bench/bench_rt_scale" --endpoints=100000 --duration=3 \
       --d-min=0.5)

  # --- optional: thread,undefined matrix leg (slow; opt-in). Runs the
  # full suite -- which now includes the SweepRunner thread-pool tests
  # (tests/test_sweep.cpp), the parallel surface TSan exists to vet --
  # with an explicit sweep-focused pass first so a data race there
  # fails fast with a readable filter line.
  if [[ "${CI_TSAN:-0}" == "1" ]]; then
    TSAN_BUILD="${TSAN_BUILD_DIR:-$ROOT/build-tsan}"
    echo "==> sanitizer matrix: thread,undefined (${TSAN_BUILD})"
    cmake -B "$TSAN_BUILD" -S "$ROOT" \
      -DPROBEMON_SANITIZE=thread,undefined >/dev/null
    cmake --build "$TSAN_BUILD" -j >/dev/null
    # scripts/tsan.supp silences one sanitizer-runtime false positive
    # (UBSan's IsAccessibleMemoryRange pipe probe); see the file.
    export TSAN_OPTIONS="suppressions=$ROOT/scripts/tsan.supp ${TSAN_OPTIONS:-}"
    echo "==> tsan: sweep-runner tests"
    ctest --test-dir "$TSAN_BUILD" --output-on-failure -j \
      -R 'Sweep(Runner|Determinism)'
    # The reactor surface: start/stop churn under a concurrent scrape,
    # cross-thread post(), and the async transport/presence stack --
    # the loop-confinement contract TSan exists to vet.
    echo "==> tsan: event-loop reactor tests"
    ctest --test-dir "$TSAN_BUILD" --output-on-failure -j \
      -R 'EventLoop|WallClockWheel|Async(UdpTransport|Runtime|Presence)'
    echo "==> tsan: full suite"
    ctest --test-dir "$TSAN_BUILD" --output-on-failure -j
  fi

  # --- machine-readable summary. The checked suite aborts on any
  # invariant violation, so reaching this line means the tally is 0.
  python3 - "$SUMMARY_DIR/analysis_summary.json" "$SCRATCH/lint.json" \
    "$TIDY_COUNT" "$TSA_BUILD_STATUS" "$TSA_SELFTEST_STATUS" <<'EOF'
import json, sys
out, lint_path, tidy, tsa_build, tsa_selftest = sys.argv[1:6]
lint = json.load(open(lint_path))
json.dump({
    "invariant_violations": 0,
    "checked_suite": "passed",
    "sanitizers": ["address", "undefined"],
    "tidy_warnings": None if tidy == "skipped" else int(tidy),
    "tidy_ran": tidy != "skipped",
    "lint_findings": len(lint["findings"]),
    "lint_files_scanned": lint["files_scanned"],
    "tsa_build": tsa_build,
    "tsa_selftest": tsa_selftest,
    "tsa_ran": tsa_build == "passed",
    "lock_order_smoke": "passed",
}, open(out, "w"), indent=2)
print(f"==> wrote {out}")
EOF
fi

echo "==> ci.sh OK"
