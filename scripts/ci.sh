#!/usr/bin/env bash
# CI gate: tier-1 build + ctest, then a bench smoke whose JSON summaries
# are diffed so regressions fail loudly.
#
#   scripts/ci.sh                       # build, test, smoke, self-diff
#   BENCH_BASELINE_DIR=path scripts/ci.sh   # additionally diff against
#                                           # a stored baseline
#
# The self-diff runs the (deterministic, seeded) smoke benches twice and
# requires identical summaries -- it catches accidental nondeterminism
# and validates the tools/bench_diff.py pipeline on every run, even when
# no stored baseline exists. With BENCH_BASELINE_DIR set, the first
# smoke pass is also compared against that baseline at a looser
# threshold (override with BENCH_DIFF_THRESHOLD, percent).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
THRESHOLD="${BENCH_DIFF_THRESHOLD:-15}"

# Short-duration, seeded smoke runs; one DES bench per protocol family.
SMOKE_BENCHES=(
  # t1 needs enough post-warmup samples for >= 2 batch means.
  "bench_t1_sapp_steady --seed=7 --duration=1000 --warmup=200"
  "bench_f5_dcpp_dynamic --seed=7"
  "bench_a5_detection --seed=7"
)

echo "==> configure + build (${BUILD})"
cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j >/dev/null

echo "==> tier-1 ctest"
ctest --test-dir "$BUILD" --output-on-failure -j

run_smoke() {
  # $1: scratch dir; benches write bench_out/ relative to cwd.
  local dir="$1"
  mkdir -p "$dir"
  for spec in "${SMOKE_BENCHES[@]}"; do
    # shellcheck disable=SC2086  # intentional word-split of the spec
    set -- $spec
    local bench="$1"; shift
    echo "    $bench $*"
    (cd "$dir" && "$BUILD/bench/$bench" "$@" >/dev/null)
  done
}

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

echo "==> bench smoke (pass 1)"
run_smoke "$SCRATCH/run1"
echo "==> bench smoke (pass 2, same seeds)"
run_smoke "$SCRATCH/run2"

echo "==> determinism diff (pass 1 vs pass 2, threshold 0%)"
python3 "$ROOT/tools/bench_diff.py" \
  "$SCRATCH/run1/bench_out" "$SCRATCH/run2/bench_out" --threshold 0

if [[ -n "${BENCH_BASELINE_DIR:-}" ]]; then
  echo "==> baseline diff ($BENCH_BASELINE_DIR, threshold ${THRESHOLD}%)"
  python3 "$ROOT/tools/bench_diff.py" \
    "$BENCH_BASELINE_DIR" "$SCRATCH/run1/bench_out" --threshold "$THRESHOLD"
else
  echo "==> no BENCH_BASELINE_DIR set; skipped stored-baseline diff"
  echo "    (seed one with: cp -r $SCRATCH/run1/bench_out <baseline-dir>)"
fi

echo "==> ci.sh OK"
