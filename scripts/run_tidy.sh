#!/usr/bin/env bash
# clang-tidy over the project sources via compile_commands.json.
#
#   scripts/run_tidy.sh                 # all of src/
#   scripts/run_tidy.sh src/core src/des   # restrict to subtrees
#   TIDY_JOBS=4 scripts/run_tidy.sh     # parallelism (default: nproc)
#
# Exit status: 0 when clean OR when clang-tidy is not installed (the
# container used for tier-1 CI ships only gcc; the tidy stage is a
# best-effort extra there — set REQUIRE_TIDY=1 to make a missing tool
# fatal, e.g. on a dev box that should have it). Non-zero when
# clang-tidy reports any warning.
#
# The check profile lives in .clang-tidy at the repo root; suppressions
# belong inline as NOLINT(<check>) with a reason, never here.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="${TIDY_JOBS:-$(nproc)}"

# When TIDY_COUNT_FILE is set the warning count is written there
# ("skipped" when the tool is unavailable) for ci.sh's summary JSON.
TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  if [[ "${REQUIRE_TIDY:-0}" == "1" ]]; then
    echo "run_tidy.sh: clang-tidy not found and REQUIRE_TIDY=1" >&2
    exit 1
  fi
  echo "run_tidy.sh: clang-tidy not installed; skipping (set REQUIRE_TIDY=1 to fail instead)"
  [[ -n "${TIDY_COUNT_FILE:-}" ]] && echo "skipped" > "$TIDY_COUNT_FILE"
  exit 0
fi

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "==> generating compile_commands.json in $BUILD"
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
fi

# Restrict to requested subtrees (default: all first-party sources).
declare -a SCOPES=("${@:-src}")
declare -a FILES=()
for scope in "${SCOPES[@]}"; do
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find "$ROOT/$scope" -name '*.cpp' | sort)
done

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_tidy.sh: no sources matched ${SCOPES[*]}" >&2
  exit 1
fi

echo "==> clang-tidy ($(basename "$TIDY")) over ${#FILES[@]} files, $JOBS jobs"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

# xargs fans the files out; clang-tidy prints findings to stdout which
# we tee so the warning count can be reported (and consumed by ci.sh).
printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD" --quiet 2>/dev/null |
  tee "$LOG" || true

WARNINGS="$(grep -c 'warning:' "$LOG" || true)"
echo "==> clang-tidy warnings: ${WARNINGS:-0}"
[[ -n "${TIDY_COUNT_FILE:-}" ]] && echo "${WARNINGS:-0}" > "$TIDY_COUNT_FILE"
if [[ "${WARNINGS:-0}" -gt 0 ]]; then
  exit 1
fi
