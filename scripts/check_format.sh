#!/usr/bin/env bash
# Diff-only formatting check: clang-format (profile: .clang-format) over
# the files touched relative to a base ref.
#
#   scripts/check_format.sh             # files changed vs HEAD
#   FORMAT_BASE=origin/main scripts/check_format.sh   # vs a base ref
#   scripts/check_format.sh --all       # whole tree (advisory only)
#
# Policy: formatting is enforced on *changed* files only — pre-existing
# files that drift from the profile produce a warning, not a failure, so
# adopting the checker never forces a tree-wide reformat commit. A
# changed file that is not clang-format clean fails the check.
#
# Exit status: 0 when clean OR when clang-format is not installed
# (REQUIRE_FORMAT=1 makes a missing tool fatal); 1 when a changed file
# needs reformatting.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASE="${FORMAT_BASE:-HEAD}"

FMT="$(command -v clang-format || true)"
if [[ -z "$FMT" ]]; then
  if [[ "${REQUIRE_FORMAT:-0}" == "1" ]]; then
    echo "check_format.sh: clang-format not found and REQUIRE_FORMAT=1" >&2
    exit 1
  fi
  echo "check_format.sh: clang-format not installed; skipping (set REQUIRE_FORMAT=1 to fail instead)"
  exit 0
fi

needs_format() {
  # True when clang-format would change the file.
  ! "$FMT" --style=file "$1" | cmp -s - "$1"
}

if [[ "${1:-}" == "--all" ]]; then
  echo "==> clang-format advisory sweep (whole tree)"
  DRIFT=0
  while IFS= read -r f; do
    if needs_format "$ROOT/$f"; then
      echo "    would reformat: $f"
      DRIFT=$((DRIFT + 1))
    fi
  done < <(cd "$ROOT" && git ls-files 'src/**.[ch]pp' 'tests/**.cpp' \
             'bench/**.cpp' 'examples/**.cpp')
  echo "==> $DRIFT file(s) drift from .clang-format (advisory; not a failure)"
  exit 0
fi

# Changed + untracked sources relative to the base ref.
mapfile -t CHANGED < <(
  cd "$ROOT" && {
    git diff --name-only --diff-filter=ACMR "$BASE" -- \
      'src/**.[ch]pp' 'tests/**.cpp' 'bench/**.cpp' 'examples/**.cpp'
    git ls-files --others --exclude-standard -- \
      'src/**.[ch]pp' 'tests/**.cpp' 'bench/**.cpp' 'examples/**.cpp'
  } | sort -u
)

if [[ ${#CHANGED[@]} -eq 0 ]]; then
  echo "==> check_format: no changed sources vs $BASE"
  exit 0
fi

echo "==> clang-format over ${#CHANGED[@]} changed file(s) (vs $BASE)"
FAIL=0
for f in "${CHANGED[@]}"; do
  [[ -f "$ROOT/$f" ]] || continue
  if needs_format "$ROOT/$f"; then
    echo "    needs reformat: $f    (run: clang-format -i $f)"
    FAIL=1
  fi
done
if [[ "$FAIL" -eq 1 ]]; then
  echo "==> check_format FAILED (changed files must be clang-format clean)"
  exit 1
fi
echo "==> check_format OK"
