set terminal pngcairo size 900,600
set output 'bench_out/f5_dcpp_dynamic.png'
set title 'Load and #CPs over 30 min [Fig 5]'
set xlabel 't (sec)'
set ylabel 'probes/s | #CPs'
set datafile separator ','
set key outside right
set xrange [1000:2800]
plot 'bench_out/f5_dcpp_dynamic.csv' using 1:2 with steps title 'Device Load', \
     'bench_out/f5_dcpp_dynamic.csv' using 1:3 with steps title '#Control Points'
