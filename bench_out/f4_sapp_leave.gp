set terminal pngcairo size 900,600
set output 'bench_out/f4_sapp_leave.png'
set title '20 CPs, 18 CPs leave, 2 CPs left [Fig 4]'
set xlabel 't (sec)'
set ylabel '1/delay (1/sec)'
set datafile separator ','
set key outside right
set yrange [0:14]
plot 'bench_out/f4_sapp_leave.csv' using 1:2 with steps title 'cp_01', \
     'bench_out/f4_sapp_leave.csv' using 1:3 with steps title 'cp_02'
