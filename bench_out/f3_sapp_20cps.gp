set terminal pngcairo size 900,600
set output 'bench_out/f3_sapp_20cps.png'
set title 'Evolution of Delays over 1 Minute [Fig 3]'
set xlabel 't (sec)'
set ylabel '1/delay (1/sec)'
set datafile separator ','
set key outside right
set yrange [0:14]
plot 'bench_out/f3_sapp_20cps.csv' using 1:2 with steps title 'cp_01', \
     'bench_out/f3_sapp_20cps.csv' using 1:3 with steps title 'cp_02', \
     'bench_out/f3_sapp_20cps.csv' using 1:4 with steps title 'cp_07', \
     'bench_out/f3_sapp_20cps.csv' using 1:5 with steps title 'cp_10', \
     'bench_out/f3_sapp_20cps.csv' using 1:6 with steps title 'cp_12', \
     'bench_out/f3_sapp_20cps.csv' using 1:7 with steps title 'cp_19', \
     'bench_out/f3_sapp_20cps.csv' using 1:8 with steps title 'cp_16'
