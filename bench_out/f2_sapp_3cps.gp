set terminal pngcairo size 900,600
set output 'bench_out/f2_sapp_3cps.png'
set title '3 active Control Points (5h 33m 20s) [Fig 2]'
set xlabel 't (sec)'
set ylabel '1/delay (1/sec)'
set datafile separator ','
set key outside right
set yrange [0:14]
plot 'bench_out/f2_sapp_3cps.csv' using 1:2 with steps title 'cp_01', \
     'bench_out/f2_sapp_3cps.csv' using 1:3 with steps title 'cp_02', \
     'bench_out/f2_sapp_3cps.csv' using 1:4 with steps title 'cp_03'
