// Tests for the network substrate: delivery semantics, loss models,
// bounded buffer, and delay models.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "des/simulation.hpp"
#include "net/delay_model.hpp"
#include "net/loss_model.hpp"
#include "net/network.hpp"

namespace probemon::net {
namespace {

class Recorder final : public INetworkClient {
 public:
  void on_message(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

Message probe(NodeId from, NodeId to, std::uint64_t cycle = 1) {
  Message m;
  m.kind = MessageKind::kProbe;
  m.from = from;
  m.to = to;
  m.cycle = cycle;
  return m;
}

TEST(Network, DeliversWithDelayBounds) {
  des::Simulation sim(1);
  Network net(sim.scheduler(), sim.rng(), NetworkConfig{},
              make_constant_delay(0.5), make_no_loss());
  Recorder a, b;
  const NodeId ida = net.attach(a);
  const NodeId idb = net.attach(b);
  EXPECT_TRUE(net.send(probe(ida, idb)));
  sim.run_until(0.4);
  EXPECT_TRUE(b.received.empty());
  sim.run_until(0.6);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, ida);
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(Network, AttachAssignsDistinctIds) {
  des::Simulation sim(1);
  auto net = Network::make_paper_default(sim.scheduler(), sim.rng());
  Recorder a, b, c;
  const NodeId ids[] = {net->attach(a), net->attach(b), net->attach(c)};
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_NE(ids[1], ids[2]);
  EXPECT_EQ(net->node_count(), 3u);
}

TEST(Network, DetachedDestinationDropsQuietly) {
  des::Simulation sim(1);
  Network net(sim.scheduler(), sim.rng(), NetworkConfig{},
              make_constant_delay(0.1), make_no_loss());
  Recorder a, b;
  const NodeId ida = net.attach(a);
  const NodeId idb = net.attach(b);
  net.send(probe(ida, idb));
  net.detach(idb);
  sim.run_until(1.0);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.counters().dropped_unknown, 1u);
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(Network, InvalidEndpointsThrow) {
  des::Simulation sim(1);
  auto net = Network::make_paper_default(sim.scheduler(), sim.rng());
  Recorder a;
  const NodeId ida = net->attach(a);
  EXPECT_THROW(net->send(probe(kInvalidNode, ida)), std::logic_error);
  EXPECT_THROW(net->send(probe(ida, kInvalidNode)), std::logic_error);
}

TEST(Network, BufferOverflowDrops) {
  des::Simulation sim(1);
  NetworkConfig config;
  config.buffer_capacity = 5;
  Network net(sim.scheduler(), sim.rng(), config, make_constant_delay(10.0),
              make_no_loss());
  Recorder a, b;
  const NodeId ida = net.attach(a);
  const NodeId idb = net.attach(b);
  for (int i = 0; i < 8; ++i) net.send(probe(ida, idb));
  EXPECT_EQ(net.in_flight(), 5u);
  EXPECT_EQ(net.counters().dropped_overflow, 3u);
  sim.run_until(20.0);
  EXPECT_EQ(b.received.size(), 5u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Network, OccupancyIsTimeWeighted) {
  des::Simulation sim(1);
  Network net(sim.scheduler(), sim.rng(), NetworkConfig{},
              make_constant_delay(1.0), make_no_loss());
  Recorder a, b;
  const NodeId ida = net.attach(a);
  const NodeId idb = net.attach(b);
  net.send(probe(ida, idb));  // in flight during [0, 1)
  sim.run_until(10.0);
  EXPECT_NEAR(net.mean_buffer_occupancy(10.0), 0.1, 1e-9);
  EXPECT_EQ(net.max_buffer_occupancy(), 1.0);
}

TEST(Network, LossModelDropsStatistically) {
  des::Simulation sim(2);
  Network net(sim.scheduler(), sim.rng(), NetworkConfig{},
              make_constant_delay(0.001), make_bernoulli_loss(0.25));
  Recorder a, b;
  const NodeId ida = net.attach(a);
  const NodeId idb = net.attach(b);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    net.send(probe(ida, idb));
    sim.run_until(sim.now() + 0.01);
  }
  const double loss_rate =
      static_cast<double>(net.counters().dropped_loss) / n;
  EXPECT_NEAR(loss_rate, 0.25, 0.02);
  EXPECT_EQ(net.counters().delivered + net.counters().dropped_loss,
            static_cast<std::uint64_t>(n));
}

TEST(Network, NoDuplicateDelivery) {
  des::Simulation sim(3);
  auto net = Network::make_paper_default(sim.scheduler(), sim.rng());
  Recorder a, b;
  const NodeId ida = net->attach(a);
  const NodeId idb = net->attach(b);
  for (std::uint64_t i = 0; i < 500; ++i) {
    net->send(probe(ida, idb, i));
  }
  sim.run_until(10.0);
  ASSERT_EQ(b.received.size(), 500u);
  std::set<std::uint64_t> cycles;
  for (const auto& m : b.received) cycles.insert(m.cycle);
  EXPECT_EQ(cycles.size(), 500u);
}

TEST(Network, OutageDropsDuringWindowOnly) {
  des::Simulation sim(4);
  Network net(sim.scheduler(), sim.rng(), NetworkConfig{},
              make_constant_delay(0.001), make_no_loss());
  Recorder a, b;
  const NodeId ida = net.attach(a);
  const NodeId idb = net.attach(b);
  net.schedule_outage(1.0, 2.0);
  auto send_at = [&](double t) {
    sim.at(t, [&] { net.send(probe(ida, idb)); });
  };
  send_at(0.5);   // before: delivered
  send_at(1.5);   // during: dropped
  send_at(2.5);   // after: delivered
  sim.run_until(5.0);
  EXPECT_EQ(b.received.size(), 2u);
  EXPECT_EQ(net.counters().dropped_outage, 1u);
}

TEST(Network, OutageDoesNotKillInFlightMessages) {
  des::Simulation sim(5);
  Network net(sim.scheduler(), sim.rng(), NetworkConfig{},
              make_constant_delay(1.0), make_no_loss());
  Recorder a, b;
  const NodeId ida = net.attach(a);
  const NodeId idb = net.attach(b);
  net.send(probe(ida, idb));  // delivery at t=1, inside the outage
  net.schedule_outage(0.5, 2.0);
  sim.run_until(3.0);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, OutageValidation) {
  des::Simulation sim(6);
  auto net = Network::make_paper_default(sim.scheduler(), sim.rng());
  EXPECT_THROW(net->schedule_outage(2.0, 1.0), std::logic_error);
  sim.run_until(5.0);
  EXPECT_THROW(net->schedule_outage(1.0, 2.0), std::logic_error);  // past
}

TEST(DelayModel, ThreeModeStaysInBands) {
  util::Rng rng(4);
  auto model = ThreeModeDelay::paper_default();
  for (int i = 0; i < 10000; ++i) {
    const double d = model.sample(rng);
    ASSERT_GE(d, 0.00005);
    ASSERT_LE(d, model.max_delay());
  }
  // One-way delay must keep the paper's timeout calibration valid:
  // 2 * RTT_max <= TOF - compute_max = 0.002.
  EXPECT_LE(4 * model.max_delay(), 0.002 + 1e-12);
}

TEST(DelayModel, ThreeModeUsesAllThreeModes) {
  util::Rng rng(5);
  auto model = ThreeModeDelay::paper_default();
  int fast = 0, medium = 0, slow = 0;
  for (int i = 0; i < 30000; ++i) {
    const double d = model.sample(rng);
    if (d < 0.00015) {
      ++fast;
    } else if (d < 0.0003) {
      ++medium;
    } else {
      ++slow;
    }
  }
  // Uniform mode choice: roughly a third each.
  EXPECT_NEAR(fast / 30000.0, 1.0 / 3.0, 0.02);
  EXPECT_NEAR(medium / 30000.0, 1.0 / 3.0, 0.02);
  EXPECT_NEAR(slow / 30000.0, 1.0 / 3.0, 0.02);
}

TEST(DelayModel, ThreeModeValidatesBandOrdering) {
  using Band = ThreeModeDelay::Band;
  EXPECT_THROW(ThreeModeDelay(Band{0.0, 0.5}, Band{0.0, 0.4}, Band{0.0, 0.6}),
               std::invalid_argument);
  EXPECT_THROW(ThreeModeDelay(Band{-0.1, 0.1}, Band{0.1, 0.2}, Band{0.2, 0.3}),
               std::invalid_argument);
}

TEST(DelayModel, DistributionDelayClampsToRange) {
  util::Rng rng(6);
  DistributionDelay model(util::make_normal(0.0, 1.0), 0.5);
  for (int i = 0; i < 10000; ++i) {
    const double d = model.sample(rng);
    ASSERT_GE(d, 0.0);
    ASSERT_LE(d, 0.5);
  }
}

TEST(LossModel, BernoulliFrequency) {
  util::Rng rng(7);
  BernoulliLoss loss(0.1);
  int lost = 0;
  for (int i = 0; i < 100000; ++i) lost += loss.lose(rng) ? 1 : 0;
  EXPECT_NEAR(lost / 100000.0, 0.1, 0.01);
}

TEST(LossModel, BernoulliValidatesProbability) {
  EXPECT_THROW(BernoulliLoss(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.1), std::invalid_argument);
}

TEST(LossModel, GilbertElliottMatchesSteadyState) {
  util::Rng rng(8);
  GilbertElliottLoss loss(0.05, 0.25, 0.01, 0.5);
  int lost = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) lost += loss.lose(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / n, loss.steady_state_loss(), 0.01);
}

TEST(LossModel, GilbertElliottIsBursty) {
  // Mean loss-run length must exceed the iid model's at equal loss rate.
  util::Rng rng(9);
  GilbertElliottLoss ge(0.02, 0.2, 0.0, 0.9);
  const double rate = ge.steady_state_loss();
  auto mean_run = [&](auto& model) {
    int runs = 0, losses = 0;
    bool in_run = false;
    for (int i = 0; i < 300000; ++i) {
      if (model.lose(rng)) {
        ++losses;
        if (!in_run) {
          ++runs;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    return runs ? static_cast<double>(losses) / runs : 0.0;
  };
  BernoulliLoss iid(rate);
  const double ge_run = mean_run(ge);
  const double iid_run = mean_run(iid);
  EXPECT_GT(ge_run, 1.5 * iid_run);
}

TEST(Message, DescribeIsInformative) {
  Message m = probe(3, 4, 17);
  const std::string text = m.describe();
  EXPECT_NE(text.find("probe"), std::string::npos);
  EXPECT_NE(text.find("3->4"), std::string::npos);
  EXPECT_NE(text.find("17"), std::string::npos);
}

}  // namespace
}  // namespace probemon::net
