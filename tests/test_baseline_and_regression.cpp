// Tests for the naive fixed-rate baseline CP and the LinearFit helper.
#include <gtest/gtest.h>

#include <cmath>

#include "core/probemon.hpp"
#include "scenario/experiment.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"

namespace probemon {
namespace {

TEST(LinearFit, ExactLine) {
  stats::LinearFit fit;
  for (int i = 0; i < 10; ++i) {
    fit.add(i, 3.0 * i - 2.0);
  }
  EXPECT_NEAR(fit.slope(), 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept(), -2.0, 1e-9);
  EXPECT_NEAR(fit.correlation(), 1.0, 1e-9);
  EXPECT_NEAR(fit.at(100.0), 298.0, 1e-6);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  util::Rng rng(1);
  stats::LinearFit fit;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    fit.add(x, -0.5 * x + 7.0 + rng.uniform(-1.0, 1.0));
  }
  EXPECT_NEAR(fit.slope(), -0.5, 0.01);
  EXPECT_NEAR(fit.intercept(), 7.0, 0.1);
  EXPECT_LT(fit.correlation(), -0.99);
}

TEST(LinearFit, DegenerateInputs) {
  stats::LinearFit fit;
  EXPECT_TRUE(std::isnan(fit.slope()));
  fit.add(1.0, 2.0);
  EXPECT_TRUE(std::isnan(fit.slope()));
  fit.add(1.0, 3.0);  // zero x-variance
  EXPECT_TRUE(std::isnan(fit.slope()));
}

TEST(FixedRateCp, ProbesAtConfiguredPeriod) {
  des::Simulation sim(1);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  core::EntityArena arena;
  core::SappDevice device(sim, *net, arena, core::SappDeviceConfig{});
  core::FixedRateCpConfig config;
  config.period = 0.5;
  core::FixedRateControlPoint cp(sim, *net, arena, device.id(), config);
  cp.start();
  sim.run_until(100.0);
  // ~2 cycles/s for 100 s.
  EXPECT_NEAR(static_cast<double>(cp.cycle().cycles_succeeded()), 200.0,
              10.0);
  EXPECT_DOUBLE_EQ(cp.current_delay(), 0.5);
}

TEST(FixedRateCp, LoadGrowsLinearlyWithPopulation) {
  auto load_for = [](std::size_t k) {
    scenario::ExperimentConfig config;
    config.protocol = scenario::Protocol::kFixedRate;
    config.seed = 50 + k;
    config.initial_cps = k;
    config.fixed_cp.period = 1.0;
    config.metrics.record_delay_series = false;
    scenario::Experiment exp(config);
    exp.run_until(200.0);
    exp.finish();
    return static_cast<double>(exp.device().probes_received()) / 200.0;
  };
  EXPECT_NEAR(load_for(3), 3.0, 0.4);
  EXPECT_NEAR(load_for(9), 9.0, 0.8);
}

TEST(FixedRateCp, Validation) {
  core::FixedRateCpConfig config;
  config.period = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FixedRateCp, DetectsAbsence) {
  des::Simulation sim(2);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  core::EntityArena arena;
  core::SappDevice device(sim, *net, arena, core::SappDeviceConfig{});
  core::FixedRateControlPoint cp(sim, *net, arena, device.id(),
                                 core::FixedRateCpConfig{});
  cp.start();
  sim.run_until(50.0);
  device.go_silent();
  sim.run_until(55.0);
  EXPECT_FALSE(cp.device_considered_present());
  EXPECT_LE(cp.absence_time(), 50.0 + 1.0 + 0.1);
}

}  // namespace
}  // namespace probemon
