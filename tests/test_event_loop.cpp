// Tests for runtime::EventLoop: task posting, wall-clock timers, fd
// dispatch, start/stop churn under a concurrent metrics scrape (the
// scenario the TSan CI leg exists for) and the exported loop counters.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "runtime/event_loop/event_loop.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"

namespace probemon::runtime {
namespace {

using namespace std::chrono_literals;

/// Spin (with sleeps) until `pred` holds or ~2 s pass.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(EventLoop, PostRunsTasksOnLoopThread) {
  EventLoop loop;
  loop.start();
  ASSERT_TRUE(loop.running());
  EXPECT_FALSE(loop.on_loop_thread());

  std::promise<std::thread::id> ran_on;
  loop.post([&loop, &ran_on] {
    EXPECT_TRUE(loop.on_loop_thread());
    ran_on.set_value(std::this_thread::get_id());
  });
  auto future = ran_on.get_future();
  ASSERT_EQ(future.wait_for(2s), std::future_status::ready);
  EXPECT_NE(future.get(), std::this_thread::get_id());
  // The counter is bumped after the batch runs; allow the loop thread
  // to get there.
  EXPECT_TRUE(eventually([&] { return loop.tasks_run() >= 1; }));
  loop.stop();
  EXPECT_FALSE(loop.running());
}

TEST(EventLoop, TimersFireThroughTheWheel) {
  EventLoop loop;
  loop.start();
  std::atomic<int> fired{0};
  // timers() is loop-confined, so arm it from a posted task.
  loop.post([&loop, &fired] {
    loop.timers().schedule_after(0.005, [&fired] { ++fired; });
    loop.timers().schedule_after(0.010, [&fired] { ++fired; });
  });
  EXPECT_TRUE(eventually([&] { return fired.load() == 2; }));
  EXPECT_GE(loop.timers_fired(), 2u);
  EXPECT_EQ(loop.timers_pending(), 0u);
  loop.stop();
}

TEST(EventLoop, DispatchesReadableFds) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_EQ(fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);

  std::atomic<int> bytes_seen{0};
  // Registered before start(): allowed while the loop is not running.
  loop.add_fd(fds[0], [&bytes_seen, read_fd = fds[0]](std::uint32_t) {
    char buf[16];
    ssize_t n;
    while ((n = read(read_fd, buf, sizeof buf)) > 0) {
      bytes_seen += static_cast<int>(n);
    }
  });
  loop.start();

  ASSERT_EQ(write(fds[1], "ab", 2), 2);
  EXPECT_TRUE(eventually([&] { return bytes_seen.load() == 2; }));
  ASSERT_EQ(write(fds[1], "c", 1), 1);
  EXPECT_TRUE(eventually([&] { return bytes_seen.load() == 3; }));
  EXPECT_GE(loop.fd_dispatches(), 2u);

  // remove_fd is loop-confined; hop onto the loop for it.
  std::promise<void> removed;
  loop.post([&loop, &removed, read_fd = fds[0]] {
    loop.remove_fd(read_fd);
    removed.set_value();
  });
  ASSERT_EQ(removed.get_future().wait_for(2s), std::future_status::ready);
  ASSERT_EQ(write(fds[1], "d", 1), 1);
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(bytes_seen.load(), 3);  // no handler anymore

  loop.stop();
  close(fds[0]);
  close(fds[1]);
}

TEST(EventLoop, PostAfterStopRunsInline) {
  EventLoop loop;
  loop.start();
  loop.stop();
  bool ran = false;
  loop.post([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // queue is closed: the task ran on this thread
}

TEST(EventLoop, StopFromLoopThreadCallback) {
  EventLoop loop;
  loop.start();
  loop.post([&loop] { loop.stop(); });  // self-stop defers the join
  EXPECT_TRUE(eventually([&] { return !loop.running(); }));
  loop.stop();  // joins the thread; idempotent
  EXPECT_FALSE(loop.running());
}

TEST(EventLoop, StartStopChurnUnderConcurrentScrape) {
  // The TSan scenario: one thread restarts the loop while another
  // scrapes /metrics-style state (counters, running(), registry
  // callbacks) the whole time.
  EventLoop loop;
  telemetry::Registry registry;
  loop.instrument(registry, "churn");

  std::atomic<bool> scraping{true};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (scraping.load()) {
      const std::string text = telemetry::to_prometheus(registry);
      EXPECT_NE(text.find("probemon_loop_wakeups_total"), std::string::npos);
      (void)loop.wakeups();
      (void)loop.tasks_run();
      (void)loop.timers_pending();
      (void)loop.running();
      ++scrapes;
    }
  });

  for (int round = 0; round < 15; ++round) {
    loop.start();
    std::atomic<int> fired{0};
    loop.post([&loop, &fired] {
      loop.timers().schedule_after(0.001, [&fired] { ++fired; });
    });
    EXPECT_TRUE(eventually([&] { return fired.load() == 1; }))
        << "round " << round;
    loop.stop();
    EXPECT_FALSE(loop.running());
  }

  scraping = false;
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);
}

TEST(EventLoop, InstrumentExportsLoopSeries) {
  EventLoop loop;
  telemetry::Registry registry;
  loop.instrument(registry, "7");
  loop.start();
  std::promise<void> done;
  loop.post([&done] { done.set_value(); });
  ASSERT_EQ(done.get_future().wait_for(2s), std::future_status::ready);
  loop.stop();

  const std::string text = telemetry::to_prometheus(registry);
  for (const char* series :
       {"probemon_loop_wakeups_total", "probemon_loop_fd_dispatches_total",
        "probemon_loop_tasks_total", "probemon_loop_timers_fired_total",
        "probemon_loop_timers_pending"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
  EXPECT_NE(text.find("loop=\"7\""), std::string::npos);
}

}  // namespace
}  // namespace probemon::runtime
