// util::InlineFunction: the SBO callable underneath every DES event.
// The properties under test are exactly the kernel's assumptions: small
// captures never allocate, oversized ones spill (and are counted), and
// move semantics transport the callable without re-running it.
#include "util/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

namespace probemon::util {
namespace {

TEST(InlineFunction, EmptyByDefaultAndAfterReset) {
  InlineFunction<int()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = [] { return 7; };
  EXPECT_TRUE(static_cast<bool>(fn));
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, InvokesWithArgumentsAndReturn) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, SmallCaptureStaysInline) {
  const std::uint64_t before = inline_function_heap_allocations();
  int hits = 0;
  InlineFunction<void()> fn = [&hits] { ++hits; };
  static_assert(InlineFunction<void()>::fits_inline<decltype([&hits] {})>);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(inline_function_heap_allocations(), before);
}

TEST(InlineFunction, CaptureAtCapacityBoundaryStaysInline) {
  const std::uint64_t before = inline_function_heap_allocations();
  std::array<char, 48> blob{};
  blob[0] = 'x';
  InlineFunction<char()> fn = [blob] { return blob[0]; };
  EXPECT_EQ(fn(), 'x');
  EXPECT_EQ(inline_function_heap_allocations(), before);
}

TEST(InlineFunction, OversizedCaptureSpillsAndIsCounted) {
  const std::uint64_t before = inline_function_heap_allocations();
  std::array<char, 64> blob{};
  blob[63] = 'z';
  auto big = [blob] { return blob[63]; };
  static_assert(!InlineFunction<char()>::fits_inline<decltype(big)>);
  InlineFunction<char()> fn = big;
  EXPECT_EQ(fn(), 'z');
  EXPECT_EQ(inline_function_heap_allocations(), before + 1);
}

TEST(InlineFunction, MoveTransfersInlineCallable) {
  int hits = 0;
  InlineFunction<void()> a = [&hits] { ++hits; };
  InlineFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  InlineFunction<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveTransfersSpilledCallableWithoutReallocating) {
  std::array<char, 64> blob{};
  blob[0] = 'q';
  const std::uint64_t before = inline_function_heap_allocations();
  InlineFunction<char()> a = [blob] { return blob[0]; };
  EXPECT_EQ(inline_function_heap_allocations(), before + 1);
  InlineFunction<char()> b = std::move(a);
  EXPECT_EQ(b(), 'q');
  // The move re-homes the existing heap block; no second allocation.
  EXPECT_EQ(inline_function_heap_allocations(), before + 1);
}

TEST(InlineFunction, DestroysCapturedState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFunction<void()> fn = [token] { (void)*token; };
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(41);
  InlineFunction<int()> fn = [owned = std::move(owned)] { return *owned + 1; };
  EXPECT_EQ(fn(), 42);
}

TEST(InlineFunction, HoldsAStdFunctionForInteropCallers) {
  // Callers migrating from std::function can hand one straight in; a
  // std::function object itself fits the 48-byte buffer.
  std::function<int()> legacy = [] { return 9; };
  static_assert(InlineFunction<int()>::fits_inline<decltype(legacy)>);
  InlineFunction<int()> fn = legacy;
  EXPECT_EQ(fn(), 9);
}

}  // namespace
}  // namespace probemon::util
