// Concurrency tests for the two thin spots TSan rarely exercises in
// the ordinary suite:
//
//   1. HistoryTicker start/stop lifecycle churn racing registry
//      mutation and HTTP scrapes of /metrics and /query.
//   2. Collector POST /push ingest racing update_presence() and the
//      /agents + merged-store read side.
//
// The assertions here are coarse (no torn state, every request
// answered, exact final counts); the real payoff is that these
// interleavings now run under the TSan and PROBEMON_CHECKED CI legs,
// where the annotated util::Mutex wrappers and the lock-order detector
// watch every acquisition.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/history_ticker.hpp"
#include "runtime/http_routes.hpp"
#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/history/history.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/registry.hpp"

namespace probemon {
namespace {

TEST(ThreadSafetyHistoryTickerTest, LifecycleChurnVsSamplesVsScrapes) {
  telemetry::Registry reg;
  auto& flips = reg.counter("probemon_test_flips_total",
                            "Mutations racing the ticker");
  telemetry::TimeSeriesHistory history(reg);
  telemetry::AlertEngine alerts(&history);
  runtime::HistoryTicker ticker(history, &alerts, 0.0005);

  telemetry::HttpServer server({.port = 0});
  telemetry::register_metrics_routes(server, reg);
  runtime::register_query_routes(server, history);
  server.start();
  const std::uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::atomic<int> bad_responses{0};

  // Churn the ticker through full start/stop cycles while everything
  // else runs: each cycle tears down and relaunches the ticker thread.
  std::thread lifecycle([&] {
    for (int i = 0; i < 40; ++i) {
      ticker.start();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      (void)ticker.running();
      (void)ticker.ticks();
      ticker.stop();
    }
    done = true;
  });

  // Mutate the registry the ticker is sampling from.
  std::thread mutator([&] {
    while (!done) {
      flips.inc();
    }
  });

  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&] {
      while (!done) {
        const auto metrics = telemetry::http_get("127.0.0.1", port,
                                                 "/metrics");
        if (metrics.status != 200) bad_responses.fetch_add(1);
        const auto query = telemetry::http_get(
            "127.0.0.1", port,
            "/query?expr=max(probemon_test_flips_total[5])&range=5");
        if (query.status != 200) bad_responses.fetch_add(1);
      }
    });
  }

  lifecycle.join();
  mutator.join();
  for (auto& t : scrapers) t.join();
  ticker.stop();
  server.stop();

  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_FALSE(ticker.running());
  EXPECT_GT(flips.value(), 0u);
}

// Same report envelope MetricsPusher produces (see test_collector.cpp).
std::string report_body(const telemetry::MetricStore& reg,
                        const std::string& agent, bool full) {
  std::string body = telemetry::to_json(reg);
  const std::string head = "{\"agent\": \"" + agent +
                           "\", \"full\": " + (full ? "true" : "false") +
                           ", ";
  return head + body.substr(1);
}

TEST(ThreadSafetyCollectorTest, PushIngestVsPresenceAndAgentReads) {
  constexpr int kAgents = 4;
  constexpr int kRounds = 25;

  runtime::CollectorPresenceConfig presence;
  presence.expected_period_s = 0.001;
  runtime::MetricsCollector collector(4, presence);
  telemetry::AlertEngine engine;
  collector.attach_alert_engine(engine);

  telemetry::HttpServer server({.port = 0});
  runtime::register_collector_routes(server, collector);
  telemetry::register_metrics_routes(server, collector.merged());
  server.start();
  const std::uint16_t port = server.port();

  std::atomic<int> push_failures{0};
  std::vector<std::thread> pushers;
  for (int a = 0; a < kAgents; ++a) {
    pushers.emplace_back([&, a] {
      telemetry::Registry mine;
      auto& probes = mine.counter("probemon_probes_total",
                                  "Probes sent by this agent");
      const std::string agent = "node-" + std::to_string(a);
      for (int r = 0; r < kRounds; ++r) {
        probes.inc();
        const auto res = telemetry::http_post(
            "127.0.0.1", port, "/push", report_body(mine, agent, r == 0));
        if (res.status != 200) push_failures.fetch_add(1);
      }
    });
  }

  std::atomic<bool> done{false};
  std::atomic<int> read_failures{0};
  std::thread reader([&] {
    while (!done) {
      (void)collector.update_presence();
      (void)collector.agents();
      (void)collector.agent_presence();
      (void)collector.merged().snapshot();
      const auto res = telemetry::http_get("127.0.0.1", port, "/agents");
      if (res.status != 200) read_failures.fetch_add(1);
    }
  });

  for (auto& t : pushers) t.join();
  done = true;
  reader.join();
  server.stop();

  EXPECT_EQ(push_failures.load(), 0);
  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_EQ(collector.agent_count(), static_cast<std::size_t>(kAgents));
  EXPECT_EQ(collector.reports_ingested(),
            static_cast<std::uint64_t>(kAgents) * kRounds);
}

}  // namespace
}  // namespace probemon
