// Tests for the scenario layer: experiment wiring, churn models, and the
// Metrics collector.
#include <gtest/gtest.h>

#include <cmath>

#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"

namespace probemon::scenario {
namespace {

ExperimentConfig base_config(Protocol protocol, std::uint64_t seed,
                             std::size_t cps) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.initial_cps = cps;
  return config;
}

TEST(Experiment, CreatesInitialPopulation) {
  Experiment exp(base_config(Protocol::kDcpp, 1, 5));
  EXPECT_EQ(exp.active_cp_count(), 5u);
  EXPECT_EQ(exp.initial_cp_ids().size(), 5u);
  EXPECT_TRUE(exp.device().present());
}

TEST(Experiment, AddRemoveCpsUpdatesCountAndMetrics) {
  Experiment exp(base_config(Protocol::kDcpp, 2, 3));
  const auto id = exp.add_cp();
  EXPECT_EQ(exp.active_cp_count(), 4u);
  EXPECT_NE(exp.cp(id), nullptr);
  exp.remove_cp(id);
  EXPECT_EQ(exp.active_cp_count(), 3u);
  EXPECT_EQ(exp.cp(id), nullptr);
  exp.remove_cp(id);  // double-remove is a no-op
  EXPECT_EQ(exp.active_cp_count(), 3u);
  // Metrics saw every transition.
  EXPECT_EQ(exp.metrics().active_cps_series().back().value, 3.0);
}

TEST(Experiment, SetActiveCpCountJoinsAndLeaves) {
  Experiment exp(base_config(Protocol::kDcpp, 3, 10));
  exp.set_active_cp_count(4);
  EXPECT_EQ(exp.active_cp_count(), 4u);
  exp.set_active_cp_count(12);
  EXPECT_EQ(exp.active_cp_count(), 12u);
}

TEST(Experiment, RunProducesProbeTraffic) {
  Experiment exp(base_config(Protocol::kDcpp, 4, 5));
  exp.run_until(30.0);
  exp.finish();
  EXPECT_GT(exp.metrics().total_probes_received(), 50u);
  EXPECT_GT(exp.metrics().total_probes_sent(),
            exp.metrics().total_probes_received() - 1);
  EXPECT_FALSE(exp.metrics().device_load().series().empty());
}

TEST(Experiment, DeviceDepartureGivesDetectionLatencies) {
  auto config = base_config(Protocol::kDcpp, 5, 8);
  Experiment exp(config);
  exp.schedule_device_departure(20.0);
  exp.run_until(40.0);
  exp.finish();
  const auto lat = exp.metrics().detection_latencies();
  EXPECT_EQ(lat.size(), 8u);
  for (double l : lat) {
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 2.0);
  }
}

TEST(Experiment, GracefulDepartureUsesBye) {
  auto config = base_config(Protocol::kDcpp, 6, 4);
  config.dissemination = true;
  Experiment exp(config);
  exp.schedule_device_departure(20.0, /*graceful=*/true);
  exp.run_until(30.0);
  exp.finish();
  // At least the last two probers get a bye and learn instantly; gossip
  // may reach the rest before their own probes fail.
  std::size_t learned = 0;
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    if (m.learned_absent_at) ++learned;
  }
  EXPECT_GE(learned, 2u);
}

TEST(Experiment, SappAndDcppSelectProtocol) {
  Experiment sapp(base_config(Protocol::kSapp, 7, 2));
  Experiment dcpp(base_config(Protocol::kDcpp, 7, 2));
  sapp.run_until(20.0);
  dcpp.run_until(20.0);
  // DCPP replies carry grants; SAPP replies carry pc. Check state types.
  EXPECT_NE(dynamic_cast<core::SappDevice*>(&sapp.device()), nullptr);
  EXPECT_NE(dynamic_cast<core::DcppDevice*>(&dcpp.device()), nullptr);
}

TEST(Experiment, InstallChurnRejectsNull) {
  Experiment exp(base_config(Protocol::kDcpp, 8, 2));
  EXPECT_THROW(exp.install_churn(nullptr), std::invalid_argument);
}

TEST(Churn, BurstLeaveRemovesExactly) {
  Experiment exp(base_config(Protocol::kDcpp, 9, 20));
  exp.install_churn(std::make_unique<BurstLeave>(10.0, 18));
  exp.run_until(9.9);
  EXPECT_EQ(exp.active_cp_count(), 20u);
  exp.run_until(10.1);
  EXPECT_EQ(exp.active_cp_count(), 2u);
}

TEST(Churn, BurstLeaveClampsAtZero) {
  Experiment exp(base_config(Protocol::kDcpp, 10, 3));
  exp.install_churn(std::make_unique<BurstLeave>(5.0, 100));
  exp.run_until(6.0);
  EXPECT_EQ(exp.active_cp_count(), 0u);
}

TEST(Churn, DynamicUniformKeepsCountInRange) {
  Experiment exp(base_config(Protocol::kDcpp, 11, 10));
  exp.install_churn(std::make_unique<DynamicUniformChurn>(1, 60, 0.5));
  std::size_t min_seen = 1000, max_seen = 0;
  for (int i = 0; i < 100; ++i) {
    exp.run_until(exp.sim().now() + 2.0);
    min_seen = std::min(min_seen, exp.active_cp_count());
    max_seen = std::max(max_seen, exp.active_cp_count());
  }
  EXPECT_GE(min_seen, 1u);
  EXPECT_LE(max_seen, 60u);
  EXPECT_GT(max_seen, 20u);  // with 100 redraws the range gets exercised
  EXPECT_LT(min_seen, 20u);
}

TEST(Churn, DynamicUniformRedrawTimingIsExponential) {
  // Mean redraw interval must be close to 1/rate.
  Experiment exp(base_config(Protocol::kDcpp, 12, 5));
  exp.install_churn(std::make_unique<DynamicUniformChurn>(1, 60, 0.05));
  exp.run_until(3000.0);
  const auto& series = exp.metrics().active_cps_series();
  // A redraw records one sample per added/removed CP, all at the same
  // instant — count distinct change *instants*, not samples.
  std::size_t redraws = 0;
  double prev_t = -1.0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].value != series[i - 1].value &&
        series[i].t != prev_t) {
      ++redraws;
      prev_t = series[i].t;
    }
  }
  const double mean_interval = 3000.0 / static_cast<double>(redraws);
  EXPECT_NEAR(mean_interval, 20.0, 6.0);
}

TEST(Churn, PoissonChurnRespectsBounds) {
  Experiment exp(base_config(Protocol::kDcpp, 13, 5));
  exp.install_churn(std::make_unique<PoissonChurn>(1.0, 1.0, 2, 8));
  for (int i = 0; i < 50; ++i) {
    exp.run_until(exp.sim().now() + 1.0);
    ASSERT_GE(exp.active_cp_count(), 2u);
    ASSERT_LE(exp.active_cp_count(), 8u);
  }
}

TEST(Churn, ScriptedChurnFollowsSteps) {
  Experiment exp(base_config(Protocol::kDcpp, 14, 2));
  exp.install_churn(std::make_unique<ScriptedChurn>(
      std::vector<ScriptedChurn::Step>{{5.0, 10}, {10.0, 1}, {15.0, 6}}));
  exp.run_until(7.0);
  EXPECT_EQ(exp.active_cp_count(), 10u);
  exp.run_until(12.0);
  EXPECT_EQ(exp.active_cp_count(), 1u);
  exp.run_until(16.0);
  EXPECT_EQ(exp.active_cp_count(), 6u);
}

TEST(Churn, ScriptedChurnValidatesOrdering) {
  EXPECT_THROW(ScriptedChurn(std::vector<ScriptedChurn::Step>{{5.0, 1},
                                                              {4.0, 2}}),
               std::invalid_argument);
}

TEST(Churn, ModelsDescribeThemselves) {
  EXPECT_NE(BurstLeave(5.0, 3).describe().find("burst"), std::string::npos);
  EXPECT_NE(DynamicUniformChurn(1, 60, 0.05).describe().find("60"),
            std::string::npos);
  EXPECT_NE(PoissonChurn(1, 1, 0, 5).describe().find("poisson"),
            std::string::npos);
  EXPECT_NE(StaticChurn().describe().find("static"), std::string::npos);
}

TEST(Metrics, DelayMomentsRespectWarmup) {
  MetricsConfig config;
  config.warmup = 100.0;
  Metrics metrics(config);
  metrics.on_delay_updated(1, 50.0, 5.0);   // pre-warmup: series only
  metrics.on_delay_updated(1, 150.0, 1.0);  // post-warmup
  const auto* cp = metrics.cp(1);
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->delay_series.size(), 2u);
  EXPECT_EQ(cp->delay_moments.count(), 1u);
  EXPECT_EQ(cp->delay_moments.mean(), 1.0);
  EXPECT_EQ(cp->frequency_moments.mean(), 1.0);
}

TEST(Metrics, FairnessOverFrequencies) {
  Metrics metrics;
  metrics.on_delay_updated(1, 1.0, 1.0);
  metrics.on_delay_updated(2, 1.0, 1.0);
  EXPECT_NEAR(metrics.frequency_fairness(), 1.0, 1e-12);
  metrics.on_delay_updated(3, 2.0, 1e9);  // a starved CP
  EXPECT_LT(metrics.frequency_fairness(), 0.9);
}

TEST(Metrics, DetectionLatenciesRequireDeparture) {
  Metrics metrics;
  metrics.on_device_declared_absent(1, 9, 10.0);
  EXPECT_TRUE(metrics.detection_latencies().empty());
  metrics.set_device_departure_time(8.0);
  const auto lat = metrics.detection_latencies();
  ASSERT_EQ(lat.size(), 1u);
  EXPECT_DOUBLE_EQ(lat[0], 2.0);
}

TEST(Metrics, SeriesRecordingCanBeDisabled) {
  MetricsConfig config;
  config.record_delay_series = false;
  Metrics metrics(config);
  metrics.on_delay_updated(1, 1.0, 2.0);
  EXPECT_TRUE(metrics.cp(1)->delay_series.empty());
  EXPECT_EQ(metrics.cp(1)->delay_moments.count(), 1u);
}

}  // namespace
}  // namespace probemon::scenario
