// Tests for TimeSeries, RateMeter, and the Jain fairness index.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/series.hpp"

namespace probemon::stats {
namespace {

TEST(TimeSeries, AppendAndAccess) {
  TimeSeries s("x");
  s.add(1.0, 10.0);
  s.add(2.0, 20.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.front().value, 10.0);
  EXPECT_EQ(s.back().t, 2.0);
  EXPECT_EQ(s.name(), "x");
}

TEST(TimeSeries, RejectsTimeReversal) {
  TimeSeries s;
  s.add(2.0, 1.0);
  EXPECT_THROW(s.add(1.0, 1.0), std::logic_error);
  s.add(2.0, 2.0);  // equal times are fine
}

TEST(TimeSeries, SliceIsHalfOpen) {
  TimeSeries s;
  for (int i = 0; i < 10; ++i) s.add(static_cast<double>(i), i * 1.0);
  const auto mid = s.slice(3.0, 6.0);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.front().t, 3.0);
  EXPECT_EQ(mid.back().t, 5.0);
}

TEST(TimeSeries, ValueAtSampleAndHold) {
  TimeSeries s;
  s.add(1.0, 10.0);
  s.add(3.0, 30.0);
  EXPECT_TRUE(std::isnan(s.value_at(0.5)));
  EXPECT_EQ(s.value_at(1.0), 10.0);
  EXPECT_EQ(s.value_at(2.9), 10.0);
  EXPECT_EQ(s.value_at(3.0), 30.0);
  EXPECT_EQ(s.value_at(100.0), 30.0);
}

TEST(TimeSeries, ResampleOnGrid) {
  TimeSeries s;
  s.add(0.0, 1.0);
  s.add(2.0, 2.0);
  const auto grid = s.resample(0.0, 4.0, 1.0);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_EQ(grid[0].value, 1.0);
  EXPECT_EQ(grid[1].value, 1.0);
  EXPECT_EQ(grid[2].value, 2.0);
  EXPECT_EQ(grid[4].value, 2.0);
}

TEST(TimeSeries, DecimateKeepsEndpointsAndBound) {
  TimeSeries s;
  for (int i = 0; i < 1000; ++i) s.add(static_cast<double>(i), i * 1.0);
  const auto d = s.decimate(100);
  EXPECT_LE(d.size(), 100u);
  EXPECT_EQ(d.front().t, 0.0);
  EXPECT_EQ(d.back().t, 999.0);
  // Short series pass through untouched.
  EXPECT_EQ(s.decimate(5000).size(), 1000u);
}

TEST(TimeSeries, WindowSummary) {
  TimeSeries s;
  for (int i = 0; i < 10; ++i) s.add(static_cast<double>(i), i * 1.0);
  const auto w = s.summary(2.0, 5.0);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_NEAR(w.mean(), 3.0, 1e-12);
}

TEST(RateMeter, ConstantRateSignal) {
  RateMeter meter(1.0, 1.0);
  // 10 events/s for 20 s.
  for (int i = 0; i < 200; ++i) meter.record(0.1 * (i + 1));
  meter.flush(20.0);
  const auto& series = meter.series();
  ASSERT_GE(series.size(), 18u);
  // Skip the first sample (partial window effects at the boundary).
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_NEAR(series[i].value, 10.0, 1.0);
  }
  EXPECT_EQ(meter.event_count(), 200u);
}

TEST(RateMeter, BurstShowsUpAsSpike) {
  RateMeter meter(1.0, 1.0);
  // Quiet, then 50 events within 0.1 s at t ~ 5.
  for (int i = 0; i < 50; ++i) meter.record(5.0 + 0.001 * i);
  meter.flush(10.0);
  double peak = 0;
  for (const auto& s : meter.series().samples()) peak = std::max(peak, s.value);
  EXPECT_NEAR(peak, 50.0, 1.0);
  // Rate returns to zero after the burst leaves the window.
  EXPECT_EQ(meter.series().back().value, 0.0);
}

TEST(RateMeter, RejectsBadConfigAndReversedTime) {
  EXPECT_THROW(RateMeter(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RateMeter(1.0, 0.0), std::invalid_argument);
  RateMeter meter(1.0, 1.0);
  meter.record(5.0);
  EXPECT_THROW(meter.record(4.0), std::logic_error);
}

TEST(RateMeter, LongRunGarbageCollectionKeepsAnswersRight) {
  RateMeter meter(1.0, 1.0);
  // Enough events to trigger internal GC (> 65536 expired).
  double t = 0;
  for (int i = 0; i < 200000; ++i) {
    t += 0.01;
    meter.record(t);
  }
  meter.flush(t);
  EXPECT_NEAR(meter.series().back().value, 100.0, 2.0);
  EXPECT_EQ(meter.event_count(), 200000u);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_NEAR(jain_fairness({1.0, 1.0, 1.0, 1.0}), 1.0, 1e-12);
  EXPECT_NEAR(jain_fairness({5.0}), 1.0, 1e-12);
}

TEST(JainFairness, SingleHogIsOneOverN) {
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 17.0);
  EXPECT_NEAR(jain_fairness(a), jain_fairness(b), 1e-12);
}

TEST(JainFairness, EdgeCases) {
  EXPECT_TRUE(std::isnan(jain_fairness({})));
  EXPECT_EQ(jain_fairness({0.0, 0.0}), 1.0);
  EXPECT_THROW(jain_fairness({-1.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace probemon::stats
