// ShardedRegistry: byte-identical equivalence with the single-map
// Registry, interned-id API, delta-scrape semantics, cross-core merge
// determinism, and interner/registration thread-safety (the concurrent
// cases are what the TSan build exercises).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/interner.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sharded_registry.hpp"

namespace probemon::telemetry {
namespace {

/// Populate any MetricStore with the same mixed content through the
/// string API, so Registry and ShardedRegistry can be compared.
void populate_mixed(MetricStore& store) {
  store.counter("probemon_probes_total", "Probes sent", {{"cp", "a"}}).inc(7);
  store.counter("probemon_probes_total", "Probes sent", {{"cp", "b"}}).inc(2);
  store.counter("probemon_losses_total").inc(11);
  store.gauge("probemon_watches", "Watched devices").set(3);
  store.gauge("probemon_load", "", {{"device", "9"}, {"kind", "cpu"}})
      .set(0.25);
  auto& h = store.histogram("probemon_cycle_seconds", {0.1, 1.0, 10.0},
                            "Cycle latency");
  h.observe(0.05);
  h.observe(5.0);
  h.observe(100.0);
  store.gauge_callback("probemon_uptime", [] { return 42.0; }, "Uptime");
}

TEST(ShardedRegistry, ByteIdenticalToRegistryAtAnyShardCount) {
  Registry plain;
  populate_mixed(plain);
  const std::string want_prom = to_prometheus(plain);
  const std::string want_json = to_json(plain);
  for (const std::size_t shards : {1u, 2u, 16u, 64u}) {
    LabelInterner interner;
    ShardedRegistry sharded(shards, &interner);
    populate_mixed(sharded);
    EXPECT_EQ(to_prometheus(sharded), want_prom) << "shards=" << shards;
    EXPECT_EQ(to_json(sharded), want_json) << "shards=" << shards;
  }
}

TEST(ShardedRegistry, ShardCountRoundsUpToPowerOfTwo) {
  LabelInterner interner;
  EXPECT_EQ(ShardedRegistry(0, &interner).shard_count(), 1u);
  EXPECT_EQ(ShardedRegistry(3, &interner).shard_count(), 4u);
  EXPECT_EQ(ShardedRegistry(16, &interner).shard_count(), 16u);
}

TEST(ShardedRegistry, IdAndStringApisReturnTheSameInstance) {
  LabelInterner interner;
  ShardedRegistry reg(4, &interner);
  Counter& by_string =
      reg.counter("probemon_probes_total", "Probes", {{"cp", "a"}});
  const auto name = reg.intern_name("probemon_probes_total");
  const LabelIds labels{{reg.intern_label_name("cp"), reg.intern("a")}};
  Counter& by_id = reg.counter_ids(name, labels);
  EXPECT_EQ(&by_string, &by_id);
  by_id.inc(5);
  EXPECT_EQ(by_string.value(), 5u);
}

TEST(ShardedRegistry, TypeAndCallbackConflictsThrow) {
  LabelInterner interner;
  ShardedRegistry reg(4, &interner);
  reg.counter("probemon_x_total");
  EXPECT_THROW(reg.gauge("probemon_x_total"), std::logic_error);
  EXPECT_THROW(reg.counter_callback("probemon_x_total", [] { return 1.0; }),
               std::logic_error);
  EXPECT_THROW(reg.counter("9bad"), std::invalid_argument);
  EXPECT_THROW(reg.counter("probemon_ok_total", "", {{"9bad", "v"}}),
               std::invalid_argument);
}

TEST(ShardedRegistry, RemoveKeepsScanIndexConsistent) {
  LabelInterner interner;
  ShardedRegistry reg(1, &interner);  // one shard: all entries share a scan
  for (int i = 0; i < 8; ++i) {
    reg.counter("probemon_c_total", "", {{"i", std::to_string(i)}})
        .inc(static_cast<std::uint64_t>(i));
  }
  EXPECT_TRUE(reg.remove("probemon_c_total", {{"i", "3"}}));
  EXPECT_FALSE(reg.remove("probemon_c_total", {{"i", "3"}}));
  EXPECT_EQ(reg.size(), 7u);
  // The swap-removed slot must still scrape every survivor exactly once.
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 7u);
  for (const Sample& s : samples) {
    EXPECT_NE(s.labels[0].second, "3");
  }
  // Re-creation after remove starts a fresh series (even as a new type).
  reg.gauge("probemon_c_total2").set(1.0);
  EXPECT_TRUE(reg.remove("probemon_c_total2", {}));
  reg.counter("probemon_c_total2").inc(9);
  EXPECT_EQ(reg.snapshot().size(), 8u);
}

TEST(ShardedRegistry, DeltaScrapeReturnsOnlyChangedSeries) {
  LabelInterner interner;
  ShardedRegistry reg(4, &interner);
  auto& a = reg.counter("probemon_a_total");
  auto& b = reg.counter("probemon_b_total");
  reg.gauge("probemon_g").set(1.0);

  std::uint64_t cursor = 0;
  EXPECT_EQ(reg.snapshot_delta(cursor).size(), 3u);  // first scrape: full
  EXPECT_EQ(reg.snapshot_delta(cursor).size(), 0u);  // quiet: empty delta

  a.inc();
  auto delta = reg.snapshot_delta(cursor);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].name, "probemon_a_total");

  // full=true bypasses the cursor but still advances it.
  b.inc();
  EXPECT_EQ(reg.snapshot_delta(cursor, /*full=*/true).size(), 3u);
  EXPECT_EQ(reg.snapshot_delta(cursor).size(), 0u);
}

TEST(ShardedRegistry, IndependentCursorsSeeIndependentDeltas) {
  LabelInterner interner;
  ShardedRegistry reg(4, &interner);
  auto& c = reg.counter("probemon_a_total");
  std::uint64_t scraper1 = 0;
  std::uint64_t scraper2 = 0;
  EXPECT_EQ(reg.snapshot_delta(scraper1).size(), 1u);
  c.inc();
  EXPECT_EQ(reg.snapshot_delta(scraper1).size(), 1u);
  // A scraper arriving late still gets everything it has never seen.
  EXPECT_EQ(reg.snapshot_delta(scraper2).size(), 1u);
  EXPECT_EQ(reg.snapshot_delta(scraper2).size(), 0u);
}

TEST(ShardedRegistry, DeltaSeesRemoveAndRecreate) {
  LabelInterner interner;
  ShardedRegistry reg(4, &interner);
  reg.counter("probemon_a_total").inc(5);
  std::uint64_t cursor = 0;
  EXPECT_EQ(reg.snapshot_delta(cursor).size(), 1u);
  ASSERT_TRUE(reg.remove("probemon_a_total", {}));
  reg.counter("probemon_a_total").inc(9);
  const auto delta = reg.snapshot_delta(cursor);
  ASSERT_EQ(delta.size(), 1u);  // fresh entry has never been scraped
  EXPECT_EQ(delta[0].value, 9.0);
}

TEST(ShardedRegistry, MergesDeterministicallyAcrossCoreTypes) {
  // Registry <- ShardedRegistry and ShardedRegistry <- Registry must
  // land on the same bytes as Registry <- Registry.
  Registry src_plain;
  populate_mixed(src_plain);
  LabelInterner src_interner;
  ShardedRegistry src_sharded(8, &src_interner);
  populate_mixed(src_sharded);

  Registry want;
  want.counter("probemon_probes_total", "", {{"cp", "a"}}).inc(1);
  want.merge_from(src_plain);
  const std::string golden = to_prometheus(want);

  Registry into_plain;
  into_plain.counter("probemon_probes_total", "", {{"cp", "a"}}).inc(1);
  into_plain.merge_from(src_sharded);
  EXPECT_EQ(to_prometheus(into_plain), golden);

  LabelInterner dst_interner;
  ShardedRegistry into_sharded(4, &dst_interner);
  into_sharded.counter("probemon_probes_total", "", {{"cp", "a"}}).inc(1);
  into_sharded.merge_from(src_plain);
  // Callbacks are skipped by merge (they are process-local), so drop
  // the callback series from the golden before comparing.
  Registry want_no_cb;
  want_no_cb.counter("probemon_probes_total", "", {{"cp", "a"}}).inc(1);
  want_no_cb.merge_from(src_plain);
  EXPECT_EQ(to_prometheus(into_sharded), to_prometheus(want_no_cb));
}

TEST(ShardedRegistry, ExplicitHelpBeatsMergeInheritedHelp) {
  Registry src;
  src.counter("probemon_m_total", "merge help").inc(1);
  LabelInterner interner;
  ShardedRegistry dst(4, &interner);
  dst.merge_from(src);
  // Explicit registration upgrades help inherited from the merge...
  dst.counter("probemon_m_total", "explicit help");
  // ...and a later merge does not resurrect the stale text.
  dst.merge_from(src);
  const auto samples = dst.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].help, "explicit help");
}

TEST(LabelInterner, ConcurrentInternsAgreeOnIds) {
  LabelInterner interner;
  constexpr int kThreads = 8;
  constexpr int kStrings = 500;
  std::vector<std::vector<std::uint32_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&interner, &ids, t] {
      ids[t].reserve(kStrings);
      for (int i = 0; i < kStrings; ++i) {
        ids[t].push_back(interner.intern("label-" + std::to_string(i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);  // same string -> same id, on every thread
  }
  for (int i = 0; i < kStrings; ++i) {
    EXPECT_EQ(interner.str(ids[0][i]), "label-" + std::to_string(i));
  }
  EXPECT_EQ(interner.str(0), "");  // id 0 is always the empty string
}

TEST(ShardedRegistry, ConcurrentRegistrationKeepsSnapshotsStable) {
  LabelInterner interner;
  ShardedRegistry reg(8, &interner);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const auto name = reg.intern_name("probemon_conc_total");
      const auto key = reg.intern_label_name("i");
      for (int i = 0; i < kPerThread; ++i) {
        // Overlapping label sets across threads: find-or-create races.
        const LabelIds labels{{key, reg.intern(std::to_string(i))}};
        reg.counter_ids(name, labels).inc();
      }
      (void)t;
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), static_cast<std::size_t>(kPerThread));
  double total = 0;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    total += snap[i].value;
    if (i > 0) {
      // Ordering is the deterministic (name, labels) key order.
      EXPECT_LT(detail::make_key(snap[i - 1].name, snap[i - 1].labels),
                detail::make_key(snap[i].name, snap[i].labels));
    }
  }
  EXPECT_EQ(total, static_cast<double>(kThreads * kPerThread));
  // A second snapshot with no writes in between is byte-stable.
  EXPECT_EQ(to_prometheus(reg), to_prometheus(reg));
}

}  // namespace
}  // namespace probemon::telemetry
