// Tests for the UDP loopback transport: wire codec round-trips and the
// full protocol stack over real sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/rt_control_point.hpp"
#include "runtime/rt_device.hpp"
#include "runtime/udp_transport.hpp"
#include "telemetry/registry.hpp"

namespace probemon::runtime {
namespace {

using namespace std::chrono_literals;

TEST(UdpWire, EncodeDecodeRoundTrip) {
  net::Message msg;
  msg.kind = net::MessageKind::kReply;
  msg.from = 3;
  msg.to = 4;
  msg.cycle = 0x1122334455667788ULL;
  msg.attempt = 2;
  msg.pc = 0xAABBCCDDEEFF0011ULL;
  msg.grant_delay = 0.31415926;
  msg.last_probers = {7, 9};
  msg.subject = 12;
  msg.ttl = 5;

  std::uint8_t wire[kUdpWireSize];
  EXPECT_EQ(udp_encode(msg, wire), kUdpWireSize);

  net::Message decoded;
  ASSERT_TRUE(udp_decode(wire, kUdpWireSize, decoded));
  EXPECT_EQ(decoded.kind, msg.kind);
  EXPECT_EQ(decoded.from, msg.from);
  EXPECT_EQ(decoded.to, msg.to);
  EXPECT_EQ(decoded.cycle, msg.cycle);
  EXPECT_EQ(decoded.attempt, msg.attempt);
  EXPECT_EQ(decoded.pc, msg.pc);
  EXPECT_DOUBLE_EQ(decoded.grant_delay, msg.grant_delay);
  EXPECT_EQ(decoded.last_probers, msg.last_probers);
  EXPECT_EQ(decoded.subject, msg.subject);
  EXPECT_EQ(decoded.ttl, msg.ttl);
}

TEST(UdpWire, RejectsMalformedInput) {
  std::uint8_t wire[kUdpWireSize] = {};
  net::Message out;
  EXPECT_FALSE(udp_decode(wire, kUdpWireSize - 1, out));  // short datagram
  wire[0] = 0xFF;                                         // bogus kind
  EXPECT_FALSE(udp_decode(wire, kUdpWireSize, out));
}

TEST(UdpTransport, DeliversBetweenNodes) {
  UdpTransport transport;
  std::atomic<int> received{0};
  net::Message last;
  std::mutex m;
  const net::NodeId a = transport.attach([](const net::Message&) {});
  const net::NodeId b = transport.attach([&](const net::Message& msg) {
    std::lock_guard lock(m);
    last = msg;
    ++received;
  });
  EXPECT_NE(transport.port_of(a), 0);
  EXPECT_NE(transport.port_of(b), 0);
  EXPECT_NE(transport.port_of(a), transport.port_of(b));

  net::Message msg;
  msg.kind = net::MessageKind::kProbe;
  msg.from = a;
  msg.to = b;
  msg.cycle = 42;
  transport.send(msg);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (received == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(received, 1);
  std::lock_guard lock(m);
  EXPECT_EQ(last.cycle, 42u);
  EXPECT_EQ(last.from, a);
}

TEST(UdpTransport, DetachStopsDelivery) {
  UdpTransport transport;
  std::atomic<int> received{0};
  const net::NodeId a = transport.attach([](const net::Message&) {});
  const net::NodeId b =
      transport.attach([&](const net::Message&) { ++received; });
  transport.detach(b);
  net::Message msg;
  msg.kind = net::MessageKind::kProbe;
  msg.from = a;
  msg.to = b;
  transport.send(msg);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(received, 0);
}

TEST(UdpTransport, CountsUndecodableDatagramsAsRecvErrors) {
  telemetry::Registry registry;
  UdpTransport transport;
  transport.instrument(registry);
  std::atomic<int> delivered{0};
  const net::NodeId node =
      transport.attach([&](const net::Message&) { ++delivered; });
  EXPECT_EQ(transport.recv_error_count(), 0u);

  // Throw a truncated/garbage datagram at the node's port from a raw
  // socket: it must be counted as a recv error, not delivered.
  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(transport.port_of(node));
  const char junk[] = {0x01, 0x02, 0x03};
  ASSERT_EQ(sendto(fd, junk, sizeof junk, 0,
                   reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            static_cast<ssize_t>(sizeof junk));
  close(fd);

  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (transport.recv_error_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(transport.recv_error_count(), 1u);
  EXPECT_EQ(delivered, 0);

  // The counter is mirrored into the registry for /metrics.
  double counted = -1.0;
  for (const auto& sample : registry.snapshot()) {
    if (sample.name == "probemon_transport_recv_errors_total") {
      counted = sample.value;
    }
  }
  EXPECT_EQ(counted, 1.0);

  // A valid message still flows afterwards.
  const net::NodeId sender = transport.attach([](const net::Message&) {});
  net::Message msg;
  msg.kind = net::MessageKind::kProbe;
  msg.from = sender;
  msg.to = node;
  transport.send(msg);
  const auto deadline2 = std::chrono::steady_clock::now() + 2s;
  while (delivered == 0 && std::chrono::steady_clock::now() < deadline2) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(delivered, 1);
}

TEST(UdpTransport, DcppOverRealSockets) {
  UdpTransport transport;
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.005;
  device_config.d_min = 0.02;  // 50 probes/s per CP
  RtDcppDevice device(transport, device_config);

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.050;  // generous: loopback + poll latency
  cp_config.timeouts.tos = 0.030;
  std::vector<std::unique_ptr<RtDcppControlPoint>> cps;
  for (int i = 0; i < 3; ++i) {
    cps.push_back(std::make_unique<RtDcppControlPoint>(
        transport, device.id(), cp_config));
    cps.back()->start();
  }
  std::this_thread::sleep_for(600ms);
  for (auto& cp : cps) cp->stop();

  for (const auto& cp : cps) {
    EXPECT_TRUE(cp->device_considered_present());
    EXPECT_GT(cp->cycles_succeeded(), 5u);
  }
  EXPECT_GT(device.probes_received(), 20u);
}

TEST(UdpTransport, DetectsSilentDeviceOverSockets) {
  UdpTransport transport;
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.005;
  device_config.d_min = 0.02;
  RtDcppDevice device(transport, device_config);

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.050;
  cp_config.timeouts.tos = 0.030;
  RtDcppControlPoint cp(transport, device.id(), cp_config);
  cp.start();
  std::this_thread::sleep_for(200ms);
  ASSERT_TRUE(cp.device_considered_present());
  device.go_silent();
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (cp.device_considered_present() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_FALSE(cp.device_considered_present());
}

}  // namespace
}  // namespace probemon::runtime
