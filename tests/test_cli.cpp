// Tests for the bench/example command-line helper.
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace probemon::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  auto cli = make({"--seed=7", "--duration=12.5"});
  EXPECT_EQ(cli.get<std::uint64_t>("seed", 1), 7u);
  EXPECT_EQ(cli.get<double>("duration", 1.0), 12.5);
}

TEST(Cli, SpaceForm) {
  auto cli = make({"--seed", "9"});
  EXPECT_EQ(cli.get<std::uint64_t>("seed", 1), 9u);
}

TEST(Cli, DefaultsWhenAbsent) {
  auto cli = make({});
  EXPECT_EQ(cli.get<std::uint64_t>("seed", 42), 42u);
  EXPECT_EQ(cli.get<double>("duration", 3.5), 3.5);
  EXPECT_EQ(cli.get<std::string>("name", "x"), "x");
  EXPECT_FALSE(cli.get<bool>("verbose", false));
}

TEST(Cli, BareFlagIsTrue) {
  auto cli = make({"--verbose"});
  EXPECT_TRUE(cli.get<bool>("verbose", false));
}

TEST(Cli, BoolParsing) {
  EXPECT_TRUE(make({"--x=1"}).get<bool>("x", false));
  EXPECT_FALSE(make({"--x=false"}).get<bool>("x", true));
  auto cli = make({"--x=maybe"});
  EXPECT_THROW(cli.get<bool>("x", false), std::invalid_argument);
}

TEST(Cli, SignedIntegers) {
  auto cli = make({"--offset=-12"});
  EXPECT_EQ(cli.get<std::int64_t>("offset", 0), -12);
}

TEST(Cli, BadNumberThrows) {
  auto cli = make({"--seed=abc"});
  EXPECT_THROW(cli.get<std::uint64_t>("seed", 1), std::invalid_argument);
  auto cli2 = make({"--duration=xyz"});
  EXPECT_THROW(cli2.get<double>("duration", 1.0), std::invalid_argument);
}

TEST(Cli, HelpDetected) {
  EXPECT_TRUE(make({"--help"}).help_requested());
  EXPECT_TRUE(make({"-h"}).help_requested());
  EXPECT_FALSE(make({"--seed=1"}).help_requested());
}

TEST(Cli, HasReportsPresence) {
  auto cli = make({"--seed=1"});
  EXPECT_TRUE(cli.has("seed"));
  EXPECT_FALSE(cli.has("duration"));
}

TEST(Cli, StringValuesPassThrough) {
  auto cli = make({"--out=dir/file.csv"});
  EXPECT_EQ(cli.get<std::string>("out", ""), "dir/file.csv");
}

}  // namespace
}  // namespace probemon::util
