// Tests for core::EntityArena: generation-tagged handles, the shared
// service-queue node pool, occupancy/high-water accounting, and the
// telemetry bridge gauges.
#include <gtest/gtest.h>

#include <vector>

#include "core/entity_arena.hpp"
#include "telemetry/bridges.hpp"
#include "telemetry/registry.hpp"

namespace probemon::core {
namespace {

net::Message probe_from(net::NodeId cp, std::uint64_t cycle) {
  net::Message msg;
  msg.kind = net::MessageKind::kProbe;
  msg.from = cp;
  msg.cycle = cycle;
  return msg;
}

TEST(EntityArena, DefaultIdIsInvalid) {
  EntityArena arena;
  DeviceId did;
  CpId cid;
  EXPECT_FALSE(did.is_valid_handle());
  EXPECT_FALSE(arena.valid(did));
  EXPECT_FALSE(arena.valid(cid));
}

TEST(EntityArena, AddRemoveDeviceTracksOccupancy) {
  EntityArena arena;
  const DeviceId a = arena.add_device();
  const DeviceId b = arena.add_device();
  EXPECT_TRUE(arena.valid(a));
  EXPECT_TRUE(arena.valid(b));
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.device_in_use(), 2u);
  EXPECT_EQ(arena.device_high_water(), 2u);

  arena.remove_device(a);
  EXPECT_FALSE(arena.valid(a));
  EXPECT_TRUE(arena.valid(b));
  EXPECT_EQ(arena.device_in_use(), 1u);
  EXPECT_EQ(arena.device_high_water(), 2u);  // high water never shrinks
}

TEST(EntityArena, StaleHandleNeverAliasesReusedSlot) {
  // The ABA hazard: remove a device, acquire a new one (which reuses the
  // LIFO-freed slot), and check the old handle stays invalid while the
  // new one works. Same for CPs.
  EntityArena arena;
  const DeviceId old_id = arena.add_device();
  arena.device(old_id).probes_received = 42;
  arena.remove_device(old_id);

  const DeviceId new_id = arena.add_device();
  ASSERT_EQ(new_id.index(), old_id.index());  // slot reused (LIFO)
  EXPECT_NE(new_id, old_id);                  // but a different generation
  EXPECT_FALSE(arena.valid(old_id));
  EXPECT_TRUE(arena.valid(new_id));
  // The reused slot was reset, not inherited.
  EXPECT_EQ(arena.device(new_id).probes_received, 0u);
  EXPECT_TRUE(arena.device(new_id).present);

  const CpId old_cp = arena.add_cp();
  arena.remove_cp(old_cp);
  const CpId new_cp = arena.add_cp();
  ASSERT_EQ(new_cp.index(), old_cp.index());
  EXPECT_FALSE(arena.valid(old_cp));
  EXPECT_TRUE(arena.valid(new_cp));
}

TEST(EntityArena, ServiceQueueIsFifoPerDevice) {
  EntityArena arena;
  const DeviceId a = arena.add_device();
  const DeviceId b = arena.add_device();

  // Interleaved pushes onto two devices sharing one node pool must stay
  // FIFO per device.
  for (std::uint64_t i = 0; i < 5; ++i) {
    arena.queue_push(a, probe_from(100, i));
    arena.queue_push(b, probe_from(200, i));
  }
  EXPECT_EQ(arena.device(a).queue_len, 5u);
  EXPECT_EQ(arena.queue_pool_in_use(), 10u);

  net::Message out;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(arena.queue_pop(a, out));
    EXPECT_EQ(out.from, 100u);
    EXPECT_EQ(out.cycle, i);
  }
  EXPECT_FALSE(arena.queue_pop(a, out));
  EXPECT_EQ(arena.device(a).queue_len, 0u);

  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(arena.queue_pop(b, out));
    EXPECT_EQ(out.from, 200u);
    EXPECT_EQ(out.cycle, i);
  }
  EXPECT_EQ(arena.queue_pool_in_use(), 0u);
  EXPECT_EQ(arena.queue_pool_high_water(), 10u);
}

TEST(EntityArena, QueueClearReleasesEveryNode) {
  EntityArena arena;
  const DeviceId id = arena.add_device();
  for (std::uint64_t i = 0; i < 8; ++i) {
    arena.queue_push(id, probe_from(7, i));
  }
  arena.queue_clear(id);
  EXPECT_EQ(arena.device(id).queue_len, 0u);
  EXPECT_EQ(arena.queue_pool_in_use(), 0u);
  net::Message out;
  EXPECT_FALSE(arena.queue_pop(id, out));

  // Push after clear works on a clean list.
  arena.queue_push(id, probe_from(8, 99));
  ASSERT_TRUE(arena.queue_pop(id, out));
  EXPECT_EQ(out.cycle, 99u);
}

TEST(EntityArena, RemoveDeviceReclaimsItsQueue) {
  EntityArena arena;
  const DeviceId id = arena.add_device();
  arena.queue_push(id, probe_from(1, 0));
  arena.queue_push(id, probe_from(1, 1));
  EXPECT_EQ(arena.queue_pool_in_use(), 2u);
  arena.remove_device(id);
  EXPECT_EQ(arena.queue_pool_in_use(), 0u);
}

TEST(EntityArena, SteadyChurnDoesNotGrowSlabs) {
  // Population plateaus => slab capacity plateaus (zero steady-state
  // allocation, the fleet-scale claim behind bench_scale's flat
  // bytes/entity).
  EntityArena arena;
  std::vector<DeviceId> devices;
  std::vector<CpId> cps;
  for (int i = 0; i < 300; ++i) {
    devices.push_back(arena.add_device());
    cps.push_back(arena.add_cp());
  }
  const std::size_t device_slots = arena.device_slots();
  const std::size_t cp_slots = arena.cp_slots();

  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 100; ++i) {
      arena.remove_device(devices.back());
      devices.pop_back();
      arena.remove_cp(cps.back());
      cps.pop_back();
    }
    for (int i = 0; i < 100; ++i) {
      devices.push_back(arena.add_device());
      cps.push_back(arena.add_cp());
    }
  }
  EXPECT_EQ(arena.device_slots(), device_slots);
  EXPECT_EQ(arena.cp_slots(), cp_slots);
  EXPECT_EQ(arena.device_in_use(), 300u);
  EXPECT_EQ(arena.device_high_water(), 300u);
}

double gauge_value(const std::vector<telemetry::Sample>& samples,
                   const std::string& name) {
  for (const auto& s : samples) {
    if (s.name == name) return s.value;
  }
  return -1.0;
}

TEST(EntityArenaTelemetry, BridgeExportsOccupancyGauges) {
  EntityArena arena;
  const DeviceId device = arena.add_device();
  arena.add_cp();
  arena.add_cp();
  arena.queue_push(device, probe_from(5, 0));

  telemetry::Registry registry;
  telemetry::instrument_entity_arena(registry, arena);
  const auto samples = registry.snapshot();
  EXPECT_EQ(gauge_value(samples, "probemon_entity_arena_device_in_use"), 1.0);
  EXPECT_EQ(gauge_value(samples, "probemon_entity_arena_cp_in_use"), 2.0);
  EXPECT_EQ(gauge_value(samples, "probemon_entity_arena_cp_high_water"), 2.0);
  EXPECT_EQ(gauge_value(samples, "probemon_entity_arena_queue_pool_in_use"),
            1.0);
  EXPECT_GE(gauge_value(samples, "probemon_entity_arena_device_slots"), 1.0);

  // Callback gauges read live state: draining the queue and removing a
  // CP shows up in the next snapshot without re-registration.
  net::Message out;
  ASSERT_TRUE(arena.queue_pop(device, out));
  const auto after = registry.snapshot();
  EXPECT_EQ(gauge_value(after, "probemon_entity_arena_queue_pool_in_use"),
            0.0);
  EXPECT_EQ(gauge_value(after, "probemon_entity_arena_queue_pool_high_water"),
            1.0);
}

}  // namespace
}  // namespace probemon::core
