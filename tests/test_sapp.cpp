// SAPP tests: the pure adaptation rule (paper eq. 1), the device's probe
// counter and overload control, and CP/device integration over the
// simulated network.
#include <gtest/gtest.h>

#include <cmath>

#include "core/probemon.hpp"
#include "core/sapp_adaptation.hpp"

namespace probemon::core {
namespace {

using Network_t = std::unique_ptr<net::Network>;

SappCpConfig cp_config() {
  SappCpConfig c;  // paper defaults
  return c;
}

// --- SappAdaptation (pure rule) --------------------------------------------

TEST(SappAdaptation, FirstObservationNeverAdapts) {
  SappCpConfig config = cp_config();
  SappAdaptation a(config);
  EXPECT_EQ(a.observe(1'000'000, 1.0), config.initial_delay);
  EXPECT_TRUE(std::isnan(a.experienced_load()));
}

TEST(SappAdaptation, OverloadMultipliesDelayByAlphaInc) {
  SappCpConfig config = cp_config();
  config.initial_delay = 1.0;
  SappAdaptation a(config);
  a.observe(0, 0.0);
  // 2e6 pc units over 1 s >> beta * L_ideal = 1.5e6.
  a.observe(2'000'000, 1.0);
  EXPECT_DOUBLE_EQ(a.delta(), 2.0);
  EXPECT_DOUBLE_EQ(a.experienced_load(), 2e6);
}

TEST(SappAdaptation, UnderloadDividesDelayByAlphaDec) {
  SappCpConfig config = cp_config();
  config.initial_delay = 3.0;
  SappAdaptation a(config);
  a.observe(0, 0.0);
  // 1e5 over 1 s < L_ideal / beta = 6.67e5.
  a.observe(100'000, 1.0);
  EXPECT_DOUBLE_EQ(a.delta(), 2.0);
}

TEST(SappAdaptation, InBandKeepsDelay) {
  SappCpConfig config = cp_config();
  config.initial_delay = 1.0;
  SappAdaptation a(config);
  a.observe(0, 0.0);
  a.observe(1'000'000, 1.0);  // exactly L_ideal: inside the band
  EXPECT_DOUBLE_EQ(a.delta(), 1.0);
}

TEST(SappAdaptation, BandEdgesAreExclusive) {
  // L_exp == beta * L_ideal exactly: no adaptation (strict inequality).
  SappCpConfig config = cp_config();
  config.initial_delay = 1.0;
  SappAdaptation hi(config);
  hi.observe(0, 0.0);
  hi.observe(1'500'000, 1.0);
  EXPECT_DOUBLE_EQ(hi.delta(), 1.0);
  SappAdaptation lo(config);
  lo.observe(0, 0.0);
  lo.observe(666'667, 1.0);  // just above L_ideal / beta
  EXPECT_DOUBLE_EQ(lo.delta(), 1.0);
}

TEST(SappAdaptation, DelayClampedToBounds) {
  SappCpConfig config = cp_config();
  config.initial_delay = 8.0;
  SappAdaptation a(config);
  a.observe(0, 0.0);
  a.observe(10'000'000, 1.0);  // overload: 8 -> min(16, 10) = 10
  EXPECT_DOUBLE_EQ(a.delta(), config.delta_max);

  SappCpConfig config2 = cp_config();
  config2.initial_delay = 0.025;
  SappAdaptation b(config2);
  b.observe(0, 0.0);
  b.observe(1000, 1.0);  // underload: 0.025/1.5 clamps to delta_min
  EXPECT_DOUBLE_EQ(b.delta(), config2.delta_min);
}

TEST(SappAdaptation, NonAdvancingTimeIsIgnored) {
  SappCpConfig config = cp_config();
  config.initial_delay = 1.0;
  SappAdaptation a(config);
  a.observe(0, 5.0);
  EXPECT_DOUBLE_EQ(a.observe(10'000'000, 5.0), 1.0);  // t' == t: skip
}

TEST(SappAdaptation, DuplicateReplyRatchetDoublesDelay) {
  // Two replies a few ms apart (a duplicate from a retransmitted cycle)
  // produce a massive L_exp and double the delay — the starvation
  // ratchet analyzed in EXPERIMENTS.md.
  SappCpConfig config = cp_config();
  config.initial_delay = 1.0;
  SappAdaptation a(config);
  a.observe(100'000, 10.0);
  a.observe(200'000, 10.010);  // +Delta in 10 ms -> L_exp = 1e7
  EXPECT_DOUBLE_EQ(a.delta(), 2.0);
}

TEST(SappAdaptation, RandomWalkStaysWithinBounds) {
  // Property: whatever the observation stream, delta stays in
  // [delta_min, delta_max] and only changes by the configured factors.
  SappCpConfig config = cp_config();
  SappAdaptation a(config);
  util::Rng rng(42);
  std::uint64_t pc = 0;
  double t = 0;
  double prev = a.delta();
  for (int i = 0; i < 10000; ++i) {
    pc += rng.uniform_u64(0, 3'000'000);
    t += rng.uniform(0.001, 5.0);
    const double next = a.observe(pc, t);
    ASSERT_GE(next, config.delta_min);
    ASSERT_LE(next, config.delta_max);
    const double ratio = next / prev;
    const bool legal_step =
        std::fabs(ratio - 1.0) < 1e-9 ||
        std::fabs(ratio - config.alpha_inc) < 1e-9 ||
        std::fabs(ratio - 1.0 / config.alpha_dec) < 1e-9 ||
        next == config.delta_min || next == config.delta_max;
    ASSERT_TRUE(legal_step) << "delta " << prev << " -> " << next;
    prev = next;
  }
}

// --- SappDevice -------------------------------------------------------------

TEST(SappDevice, DeltaIsIdealOverNominal) {
  SappDeviceConfig config;
  EXPECT_EQ(config.delta(), 100'000u);
  config.l_nom = 20.0;
  EXPECT_EQ(config.delta(), 50'000u);
}

TEST(SappDevice, ProbeCounterMonotoneAndReplyCarriesIt) {
  des::Simulation sim(1);
  Network_t net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  SappDevice device(sim, *net, arena, SappDeviceConfig{});

  struct Probe final : net::INetworkClient {
    std::vector<net::Message> replies;
    void on_message(const net::Message& m) override { replies.push_back(m); }
  } cp;
  const net::NodeId cp_id = net->attach(cp);

  std::uint64_t prev_pc = 0;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    net::Message probe;
    probe.kind = net::MessageKind::kProbe;
    probe.from = cp_id;
    probe.to = device.id();
    probe.cycle = i;
    net->send(probe);
    sim.run_until(sim.now() + 1.0);
    ASSERT_EQ(cp.replies.size(), i);
    EXPECT_GT(cp.replies.back().pc, prev_pc);
    EXPECT_EQ(cp.replies.back().pc - prev_pc, device.config().delta());
    prev_pc = cp.replies.back().pc;
  }
  EXPECT_EQ(device.probe_counter(), prev_pc);
  EXPECT_EQ(device.probes_received(), 5u);
}

TEST(SappDevice, SilentDeviceIgnoresProbes) {
  des::Simulation sim(2);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  SappDevice device(sim, *net, arena, SappDeviceConfig{});

  struct Probe final : net::INetworkClient {
    int replies = 0;
    void on_message(const net::Message&) override { ++replies; }
  } cp;
  const net::NodeId cp_id = net->attach(cp);
  device.go_silent();
  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = cp_id;
  probe.to = device.id();
  net->send(probe);
  sim.run_until(1.0);
  EXPECT_EQ(cp.replies, 0);
  EXPECT_EQ(device.probes_received(), 0u);

  device.come_back();
  net->send(probe);
  sim.run_until(2.0);
  EXPECT_EQ(cp.replies, 1);
}

TEST(SappDevice, LastProbersReturnsPreviousTwoDistinct) {
  des::Simulation sim(3);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  SappDevice device(sim, *net, arena, SappDeviceConfig{});

  struct Probe final : net::INetworkClient {
    void on_message(const net::Message&) override {}
  } a, b, c;
  const net::NodeId ida = net->attach(a);
  const net::NodeId idb = net->attach(b);
  const net::NodeId idc = net->attach(c);

  auto send_probe = [&](net::NodeId from) {
    net::Message probe;
    probe.kind = net::MessageKind::kProbe;
    probe.from = from;
    probe.to = device.id();
    net->send(probe);
    sim.run_until(sim.now() + 1.0);
  };
  send_probe(ida);
  send_probe(ida);  // repeat must not duplicate
  send_probe(idb);
  send_probe(idc);
  const auto& last = device.last_probers();
  EXPECT_EQ(last[0], idc);
  EXPECT_EQ(last[1], idb);
}

TEST(SappDevice, SetDeltaValidates) {
  des::Simulation sim(4);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  SappDevice device(sim, *net, arena, SappDeviceConfig{});
  EXPECT_THROW(device.set_delta(0), std::invalid_argument);
  device.set_delta(42);
  EXPECT_EQ(device.delta(), 42u);
}

TEST(SappDeviceConfig, Validation) {
  SappDeviceConfig c;
  c.l_nom = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SappDeviceConfig{};
  c.l_ideal = 5.0;  // < l_nom
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SappDeviceConfig{};
  c.adaptive_delta = true;
  c.overload_factor = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SappCpConfig, Validation) {
  SappCpConfig c;
  c.alpha_inc = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SappCpConfig{};
  c.delta_max = c.delta_min / 2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SappCpConfig{};
  c.initial_delay = 100.0;  // above delta_max
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// --- Integration -------------------------------------------------------------

TEST(SappIntegration, SingleCpSettlesAndDeviceLoadBounded) {
  des::Simulation sim(5);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  SappDevice device(sim, *net, arena, SappDeviceConfig{});
  SappControlPoint cp(sim, *net, arena, device.id(), SappCpConfig{});
  cp.start();
  sim.run_until(500.0);
  EXPECT_TRUE(cp.device_considered_present());
  EXPECT_GT(cp.cycle().cycles_succeeded(), 10u);
  // A lone CP's load must sit inside the band: L_nom/beta .. beta*L_nom.
  const double load =
      static_cast<double>(device.probes_received()) / 500.0;
  EXPECT_LT(load, 1.5 * device.config().l_nom * 1.2);
  EXPECT_GE(cp.delta(), cp.config().delta_min);
}

TEST(SappIntegration, CpDetectsSilentDevice) {
  des::Simulation sim(6);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  SappDevice device(sim, *net, arena, SappDeviceConfig{});
  SappControlPoint cp(sim, *net, arena, device.id(), SappCpConfig{});
  cp.start();
  sim.run_until(100.0);
  ASSERT_TRUE(cp.device_considered_present());
  device.go_silent();
  sim.run_until(130.0);
  EXPECT_FALSE(cp.device_considered_present());
  EXPECT_GE(cp.absence_time(), 100.0);
  // Detection within one probing period plus the failed cycle tail.
  EXPECT_LE(cp.absence_time(), 100.0 + cp.config().delta_max + 0.1);
}

TEST(SappIntegration, ByeMessageShortcutsDetection) {
  des::Simulation sim(7);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  SappDevice device(sim, *net, arena, SappDeviceConfig{});
  SappCpConfig config;
  SappControlPoint cp(sim, *net, arena, device.id(), config);
  cp.start();
  sim.run_until(50.0);  // CP has probed: device knows it
  device.leave_gracefully();
  sim.run_until(50.5);
  EXPECT_FALSE(cp.device_considered_present());
  EXPECT_NEAR(cp.absence_time(), 50.0, 0.1);
}

TEST(SappIntegration, AdaptiveDeltaShedsOverload) {
  des::Simulation sim(8);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  SappDeviceConfig device_config;
  device_config.l_nom = 5.0;  // true capacity below what CPs deliver
  device_config.l_ideal = 0.5e6;
  device_config.adaptive_delta = true;
  device_config.overload_factor = 1.3;
  EntityArena arena;
  SappDevice device(sim, *net, arena, device_config);
  std::vector<std::unique_ptr<SappControlPoint>> cps;
  for (int i = 0; i < 10; ++i) {
    cps.push_back(std::make_unique<SappControlPoint>(
        sim, *net, arena, device.id(), SappCpConfig{}));
    cps.back()->start(0.1 * i);
  }
  sim.run_until(1500.0);
  EXPECT_GT(device.delta(), device_config.delta());  // Delta was raised
  EXPECT_LT(device.measured_load(), 5.0 * 1.4);
}

}  // namespace
}  // namespace probemon::core
