// Tests for the DES kernel: event ordering, cancellation, horizons,
// timers and periodic processes.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "des/scheduler.hpp"
#include "des/simulation.hpp"
#include "des/timer.hpp"
#include "util/rng.hpp"

namespace probemon::des {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&] { order.push_back(3); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3.0);
}

TEST(Scheduler, SameTimeEventsFireFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sched.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sched.run_all();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, PropertyRandomScheduleFiresSorted) {
  // Property: however events are inserted (including from inside other
  // events), execution times are non-decreasing.
  util::Rng rng(12345);
  Scheduler sched;
  std::vector<double> fired;
  std::function<void()> spawn = [&] {
    fired.push_back(sched.now());
    if (fired.size() < 2000) {
      sched.schedule_after(rng.uniform(0.0, 10.0),
                           [&] { spawn(); });
      if (rng.bernoulli(0.5)) {
        sched.schedule_after(rng.uniform(0.0, 5.0), [&] { spawn(); });
      }
    }
  };
  sched.schedule_at(0.0, spawn);
  sched.run_until(1e9);
  ASSERT_GE(fired.size(), 2000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]);
  }
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler sched;
  sched.schedule_at(5.0, [] {});
  sched.run_all();
  EXPECT_EQ(sched.now(), 5.0);
  EXPECT_THROW(sched.schedule_at(4.0, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_after(-1.0, [] {}), std::logic_error);
}

TEST(Scheduler, NonFiniteTimeThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_at(kTimeInfinity, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_at(std::nan(""), [] {}), std::logic_error);
}

TEST(Scheduler, EmptyCallbackThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_at(1.0, Scheduler::Callback{}),
               std::logic_error);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sched.pending(id));
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.pending(id));
  EXPECT_FALSE(sched.cancel(id));  // second cancel is a no-op
  sched.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  const EventId id = sched.schedule_at(1.0, [] {});
  sched.run_all();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, RunUntilStopsAtHorizonAndAdvancesClock) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  sched.run_until(5.5);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), 5.5);
  sched.run_until(100.0);
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RunUntilHonorsEventsScheduledDuringRun) {
  Scheduler sched;
  std::vector<double> fired;
  sched.schedule_at(1.0, [&] {
    fired.push_back(sched.now());
    sched.schedule_after(1.0, [&] { fired.push_back(sched.now()); });
  });
  sched.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(Scheduler, NextTimeSkipsCancelled) {
  Scheduler sched;
  const EventId a = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  sched.cancel(a);
  EXPECT_EQ(sched.next_time(), 2.0);
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler sched;
  const EventId a = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  EXPECT_EQ(sched.pending_count(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.run_all();
  EXPECT_EQ(sched.pending_count(), 0u);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, RunAllCapThrowsOnRunaway) {
  Scheduler sched;
  std::function<void()> loop = [&] { sched.schedule_after(1.0, loop); };
  sched.schedule_at(0.0, loop);
  EXPECT_THROW(sched.run_all(1000), std::runtime_error);
}

TEST(Timer, FiresOnceAfterDelay) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] { ++fired; });
  timer.arm(2.0);
  EXPECT_TRUE(timer.armed());
  sched.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, DisarmCancels) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] { ++fired; });
  timer.arm(2.0);
  timer.disarm();
  sched.run_until(10.0);
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmSupersedesPreviousDeadline) {
  Scheduler sched;
  std::vector<double> fire_times;
  Timer timer(sched, [&] { fire_times.push_back(sched.now()); });
  timer.arm(2.0);
  timer.arm(5.0);  // re-arm before expiry
  sched.run_until(10.0);
  EXPECT_EQ(fire_times, std::vector<double>{5.0});
}

TEST(Timer, CallbackMayRearm) {
  Scheduler sched;
  int fired = 0;
  Timer* self = nullptr;
  Timer timer(sched, [&] {
    if (++fired < 3) self->arm(1.0);
  });
  self = &timer;
  timer.arm(1.0);
  sched.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, PeriodicFiresAtPeriodUntilStopped) {
  Simulation sim(1);
  std::vector<double> at;
  auto periodic = sim.every(1.0, [&](double t) { at.push_back(t); });
  sim.run_until(3.5);
  periodic->stop();
  sim.run_until(10.0);
  EXPECT_EQ(at, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Simulation, PeriodicRespectsUntil) {
  Simulation sim(1);
  int count = 0;
  auto periodic = sim.every(1.0, [&](double) { ++count; }, 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
  (void)periodic;
}

TEST(Simulation, PeriodicDestructionStopsFiring) {
  Simulation sim(1);
  int count = 0;
  {
    auto periodic = sim.every(1.0, [&](double) { ++count; });
    sim.run_until(2.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulation, ForkRngIsStableAcrossCalls) {
  Simulation sim(7);
  auto a = sim.fork_rng("x");
  auto b = sim.fork_rng("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace probemon::des
