// Tests for the DES kernel: event ordering, cancellation, horizons,
// timers and periodic processes.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "des/scheduler.hpp"
#include "des/simulation.hpp"
#include "des/timer.hpp"
#include "util/rng.hpp"

namespace probemon::des {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&] { order.push_back(3); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3.0);
}

TEST(Scheduler, SameTimeEventsFireFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sched.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sched.run_all();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, PropertyRandomScheduleFiresSorted) {
  // Property: however events are inserted (including from inside other
  // events), execution times are non-decreasing.
  util::Rng rng(12345);
  Scheduler sched;
  std::vector<double> fired;
  std::function<void()> spawn = [&] {
    fired.push_back(sched.now());
    if (fired.size() < 2000) {
      sched.schedule_after(rng.uniform(0.0, 10.0),
                           [&] { spawn(); });
      if (rng.bernoulli(0.5)) {
        sched.schedule_after(rng.uniform(0.0, 5.0), [&] { spawn(); });
      }
    }
  };
  sched.schedule_at(0.0, spawn);
  sched.run_until(1e9);
  ASSERT_GE(fired.size(), 2000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]);
  }
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler sched;
  sched.schedule_at(5.0, [] {});
  sched.run_all();
  EXPECT_EQ(sched.now(), 5.0);
  EXPECT_THROW(sched.schedule_at(4.0, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_after(-1.0, [] {}), std::logic_error);
}

TEST(Scheduler, NonFiniteTimeThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_at(kTimeInfinity, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_at(std::nan(""), [] {}), std::logic_error);
}

TEST(Scheduler, EmptyCallbackThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_at(1.0, Scheduler::Callback{}),
               std::logic_error);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sched.pending(id));
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.pending(id));
  EXPECT_FALSE(sched.cancel(id));  // second cancel is a no-op
  sched.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  const EventId id = sched.schedule_at(1.0, [] {});
  sched.run_all();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, RunUntilStopsAtHorizonAndAdvancesClock) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  sched.run_until(5.5);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), 5.5);
  sched.run_until(100.0);
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RunUntilHonorsEventsScheduledDuringRun) {
  Scheduler sched;
  std::vector<double> fired;
  sched.schedule_at(1.0, [&] {
    fired.push_back(sched.now());
    sched.schedule_after(1.0, [&] { fired.push_back(sched.now()); });
  });
  sched.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(Scheduler, NextTimeSkipsCancelled) {
  Scheduler sched;
  const EventId a = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  sched.cancel(a);
  EXPECT_EQ(sched.next_time(), 2.0);
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler sched;
  const EventId a = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  EXPECT_EQ(sched.pending_count(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.run_all();
  EXPECT_EQ(sched.pending_count(), 0u);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, RunAllCapThrowsOnRunaway) {
  Scheduler sched;
  std::function<void()> loop = [&] { sched.schedule_after(1.0, loop); };
  sched.schedule_at(0.0, loop);
  EXPECT_THROW(sched.run_all(1000), std::runtime_error);
}

// --- timer-wheel kernel ----------------------------------------------------

TEST(Scheduler, ConfigValidationThrows) {
  SchedulerConfig bad;
  bad.tick_bits = 31;
  EXPECT_THROW(Scheduler{bad}, std::invalid_argument);
  bad.tick_bits = -1;
  EXPECT_THROW(Scheduler{bad}, std::invalid_argument);
  bad = SchedulerConfig{};
  bad.wheel_bits = 5;
  EXPECT_THROW(Scheduler{bad}, std::invalid_argument);
  bad.wheel_bits = 23;
  EXPECT_THROW(Scheduler{bad}, std::invalid_argument);
}

TEST(Scheduler, BackendAccessorReportsConfig) {
  Scheduler wheel;
  EXPECT_EQ(wheel.backend(), SchedulerBackend::kWheel);
  SchedulerConfig config;
  config.backend = SchedulerBackend::kHeap;
  Scheduler heap(config);
  EXPECT_EQ(heap.backend(), SchedulerBackend::kHeap);
}

TEST(Scheduler, EventScheduledExactlyAtHorizonDuringRunFires) {
  // The horizon is INCLUSIVE even for events created mid-run: an event
  // at t=1 that schedules a follow-up at exactly t=2 must see that
  // follow-up fire inside run_until(2.0).
  Scheduler sched;
  std::vector<double> fired;
  sched.schedule_at(1.0, [&] {
    fired.push_back(sched.now());
    sched.schedule_at(2.0, [&] { fired.push_back(sched.now()); });
  });
  const std::uint64_t n = sched.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sched.now(), 2.0);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, RunUntilAdvancesClockPastEmptyQueue) {
  Scheduler sched;
  EXPECT_EQ(sched.run_until(7.0), 0u);
  EXPECT_EQ(sched.now(), 7.0);
  // Infinite horizon with an empty queue must leave the clock finite.
  EXPECT_EQ(sched.run_until(kTimeInfinity), 0u);
  EXPECT_EQ(sched.now(), 7.0);
}

TEST(Scheduler, QueueHighWaterUnderHeavyCancelChurn) {
  // Regression: the high-water mark counts *live* events. A cancel-heavy
  // workload (arm/disarm timeouts, the protocol's steady state) must not
  // inflate it with reclaimed slots, and the slot pool must plateau
  // instead of growing per wave.
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(
        sched.schedule_at(1.0 + i * 1e-3, [] {}));
  }
  EXPECT_EQ(sched.queue_high_water(), 1000u);
  for (int i = 0; i < 900; ++i) EXPECT_TRUE(sched.cancel(ids[size_t(i)]));
  EXPECT_EQ(sched.pending_count(), 100u);
  const std::size_t slots_after_first_wave = sched.pool_slots();

  // Ten more churn waves, each smaller than the peak: high water frozen,
  // pool recycled in place.
  for (int wave = 0; wave < 10; ++wave) {
    std::vector<EventId> wave_ids;
    for (int i = 0; i < 500; ++i) {
      wave_ids.push_back(sched.schedule_at(2.0 + i * 1e-3, [] {}));
    }
    for (EventId id : wave_ids) EXPECT_TRUE(sched.cancel(id));
  }
  EXPECT_EQ(sched.queue_high_water(), 1000u);
  EXPECT_EQ(sched.pool_slots(), slots_after_first_wave);
  EXPECT_EQ(sched.pending_count(), 100u);

  sched.run_all();
  EXPECT_EQ(sched.executed_count(), 100u);
  EXPECT_EQ(sched.queue_high_water(), 1000u);
  EXPECT_EQ(sched.pool_in_use(), 0u);
}

TEST(Scheduler, CancelSameTimeEventFromEarlierSibling) {
  // Exercises cancellation inside the currently-executing tick (the
  // sorted-run bucket): an event cancels a same-time later sibling.
  Scheduler sched;
  std::vector<int> order;
  EventId doomed;
  sched.schedule_at(1.0, [&] {
    order.push_back(0);
    EXPECT_TRUE(sched.cancel(doomed));
  });
  doomed = sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(1.0, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Scheduler, ZeroDelaySelfScheduleStaysFifoWithinInstant) {
  // Events scheduled *into* the executing instant (zero-delay sends) go
  // through the late-arrival path and must still fire after already-
  // queued same-time events, in scheduling order.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(1.0, [&] {
    order.push_back(0);
    sched.schedule_after(0.0, [&] { order.push_back(3); });
    sched.schedule_after(0.0, [&] { order.push_back(4); });
  });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(1.0, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sched.now(), 1.0);
}

TEST(Scheduler, FarFutureEventsPromoteFromOverflowInOrder) {
  // Default wheel span is 2^15 ticks * 2^-8 s = 128 s; times beyond it
  // wait in the overflow heap and must promote as the window slides.
  Scheduler sched;
  std::vector<double> fired;
  for (double t : {1000.0, 5.0, 500.0, 200.0, 127.9, 128.1}) {
    sched.schedule_at(t, [&] { fired.push_back(sched.now()); });
  }
  sched.run_all();
  EXPECT_EQ(fired,
            (std::vector<double>{5.0, 127.9, 128.1, 200.0, 500.0, 1000.0}));
}

TEST(Scheduler, WindowJumpOverEmptyWheelThenNearEvents) {
  // A long silent gap forces the wheel window to jump straight to the
  // overflow root; events scheduled from there (short delays) must land
  // back in the wheel and fire correctly.
  Scheduler sched;
  std::vector<double> fired;
  sched.schedule_at(0.5, [&] { fired.push_back(sched.now()); });
  sched.schedule_at(300.0, [&] {
    fired.push_back(sched.now());
    sched.schedule_after(0.25, [&] { fired.push_back(sched.now()); });
    sched.schedule_after(10.0, [&] { fired.push_back(sched.now()); });
  });
  sched.schedule_at(700.0, [&] { fired.push_back(sched.now()); });
  sched.run_all();
  EXPECT_EQ(fired,
            (std::vector<double>{0.5, 300.0, 300.25, 310.0, 700.0}));
}

// Ordering-equivalence harness: run the same randomized schedule/cancel
// workload on a given scheduler and record the exact (time, seq) trace.
struct TraceEntry {
  Time time;
  std::uint64_t seq;
  bool operator==(const TraceEntry&) const = default;
};

std::vector<TraceEntry> run_trace_workload(const SchedulerConfig& config,
                                           std::uint64_t seed) {
  Scheduler sched(config);
  std::vector<TraceEntry> trace;
  sched.set_execution_probe(
      [&trace](Time t, std::uint64_t seq) { trace.push_back({t, seq}); });

  util::Rng rng(seed);
  std::vector<EventId> cancellable;
  std::uint64_t spawned = 0;
  std::function<void()> spawn = [&] {
    if (spawned >= 6000) return;
    // Mixed horizons: same-instant ties, wheel-resident short delays,
    // and far-future overflow residents, plus cancel churn.
    const double roll = rng.uniform(0.0, 1.0);
    double delay;
    if (roll < 0.15) {
      delay = 0.0;
    } else if (roll < 0.85) {
      delay = rng.uniform(0.0, 12.0);
    } else {
      delay = rng.uniform(100.0, 400.0);
    }
    ++spawned;
    const EventId id = sched.schedule_after(delay, [&] { spawn(); });
    if (rng.bernoulli(0.3)) {
      cancellable.push_back(id);
    }
    // Branch (supercritically, so cancel churn can't extinguish the
    // population before the spawn cap).
    if (rng.bernoulli(0.6)) {
      ++spawned;
      sched.schedule_after(rng.uniform(0.0, 8.0), [&] { spawn(); });
    }
    if (cancellable.size() > 8 && rng.bernoulli(0.4)) {
      const auto pick =
          rng.uniform_u64(0, cancellable.size() - 1);
      sched.cancel(cancellable[pick]);
      cancellable.erase(cancellable.begin() + static_cast<long>(pick));
    }
  };
  for (int i = 0; i < 8; ++i) sched.schedule_at(0.0, [&] { spawn(); });
  sched.run_all();
  return trace;
}

TEST(Scheduler, WheelTraceBitIdenticalToHeapReference) {
  // The tentpole's correctness bar: the timer wheel must reproduce the
  // reference heap's execution order *exactly* — same (time, seq) pairs,
  // same positions — under randomized schedule/cancel workloads.
  for (std::uint64_t seed : {7u, 99u, 2026u}) {
    SchedulerConfig wheel_config;  // defaults = wheel backend
    SchedulerConfig heap_config;
    heap_config.backend = SchedulerBackend::kHeap;
    const auto wheel = run_trace_workload(wheel_config, seed);
    const auto heap = run_trace_workload(heap_config, seed);
    ASSERT_GT(wheel.size(), 1000u);
    ASSERT_EQ(wheel.size(), heap.size()) << "seed=" << seed;
    EXPECT_TRUE(wheel == heap) << "seed=" << seed;
  }
}

TEST(Scheduler, CoarseWheelGeometryPreservesOrdering) {
  // A deliberately tiny, coarse wheel (64 slots, 1 s ticks) forces many
  // events per tick and constant window slides — ordering must survive.
  SchedulerConfig coarse;
  coarse.tick_bits = 0;
  coarse.wheel_bits = 6;
  SchedulerConfig heap_config;
  heap_config.backend = SchedulerBackend::kHeap;
  const auto coarse_trace = run_trace_workload(coarse, 31415);
  const auto heap_trace = run_trace_workload(heap_config, 31415);
  ASSERT_EQ(coarse_trace.size(), heap_trace.size());
  EXPECT_TRUE(coarse_trace == heap_trace);
}

// --- two-level (coarse) wheel ----------------------------------------------

TEST(Scheduler, ResidencySplitsAcrossWheelLevels) {
  // Shrunken geometry so all three levels are easy to hit: 1 s ticks,
  // 64-slot fine wheel (64 s span), coarse_tick_bits resolving to
  // min(13, wheel_bits-1) = 5 (32 s coarse slots), 64 coarse slots
  // => coarse span 2048 s.
  SchedulerConfig config;
  config.tick_bits = 0;
  config.wheel_bits = 6;
  config.coarse_bits = 6;
  Scheduler sched(config);
  sched.schedule_at(10.0, [] {});    // fine window [0, 64)
  sched.schedule_at(100.0, [] {});   // coarse window [64, 2048)
  sched.schedule_at(3000.0, [] {});  // beyond the coarse span
  EXPECT_EQ(sched.fine_resident(), 1u);
  EXPECT_EQ(sched.coarse_resident(), 1u);
  EXPECT_EQ(sched.overflow_resident(), 1u);

  // Running past the coarse event cascades it into the fine wheel and
  // fires it. The far event remains pending; where it parks meanwhile
  // (overflow, a wheel level, or the pre-drained execution bucket) is an
  // implementation detail — an idle scheduler may slide its window all
  // the way to the next event.
  sched.run_until(150.0);
  EXPECT_EQ(sched.executed_count(), 2u);
  EXPECT_EQ(sched.pending_count(), 1u);
  EXPECT_EQ(sched.next_time(), 3000.0);

  sched.run_all();
  EXPECT_EQ(sched.executed_count(), 3u);
  EXPECT_EQ(sched.now(), 3000.0);
}

TEST(Scheduler, LevelBoundaryTimersFireInOrder) {
  // Timers straddling the fine/coarse boundary (128 s at defaults) and
  // the coarse/overflow boundary (4096 * 32 s = 131072 s) must fire in
  // exact time order across the cascades.
  Scheduler sched;
  // Initial placement sanity at t = 0: two fine, two coarse, two overflow.
  std::vector<double> fired;
  for (double t : {127.99, 131080.0, 128.0, 131072.0, 0.5, 131071.5}) {
    sched.schedule_at(t, [&] { fired.push_back(sched.now()); });
  }
  EXPECT_EQ(sched.fine_resident(), 2u);
  EXPECT_EQ(sched.coarse_resident(), 2u);
  EXPECT_EQ(sched.overflow_resident(), 2u);
  sched.run_all();
  EXPECT_EQ(fired, (std::vector<double>{0.5, 127.99, 128.0, 131071.5,
                                        131072.0, 131080.0}));
}

TEST(Scheduler, CancelThenCascadeChurn) {
  // Cancel-heavy churn on coarse-resident timers: cancellation must
  // unlink O(1) from the coarse slot lists, and the survivors must
  // still cascade down and fire in order.
  Scheduler sched;
  std::vector<double> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    const double t = 200.0 + i;  // all coarse-resident at t=0
    ids.push_back(sched.schedule_at(t, [&] { fired.push_back(sched.now()); }));
  }
  EXPECT_EQ(sched.coarse_resident(), 500u);
  for (int i = 0; i < 500; i += 2) EXPECT_TRUE(sched.cancel(ids[size_t(i)]));
  EXPECT_EQ(sched.coarse_resident(), 250u);
  sched.run_all();
  ASSERT_EQ(fired.size(), 250u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], 200.0 + 2 * i + 1);
  }
  // Cancelling after the cascade+fire is a clean no-op.
  for (EventId id : ids) EXPECT_FALSE(sched.cancel(id));
}

// Long-haul variant of the trace workload: delays up to days, so events
// traverse overflow -> coarse -> fine across many cascades, with cancel
// churn hitting every level.
std::vector<TraceEntry> run_longhaul_workload(const SchedulerConfig& config,
                                              std::uint64_t seed) {
  Scheduler sched(config);
  std::vector<TraceEntry> trace;
  sched.set_execution_probe(
      [&trace](Time t, std::uint64_t seq) { trace.push_back({t, seq}); });

  util::Rng rng(seed);
  std::vector<EventId> cancellable;
  std::uint64_t spawned = 0;
  std::function<void()> spawn = [&] {
    if (spawned >= 3000) return;
    const double roll = rng.uniform(0.0, 1.0);
    double delay;
    if (roll < 0.2) {
      delay = rng.uniform(0.0, 10.0);       // fine wheel
    } else if (roll < 0.55) {
      delay = rng.uniform(100.0, 2000.0);   // coarse wheel
    } else if (roll < 0.9) {
      delay = rng.uniform(2000.0, 120000.0);  // deep coarse
    } else {
      delay = rng.uniform(140000.0, 400000.0);  // beyond the coarse span
    }
    ++spawned;
    const EventId id = sched.schedule_after(delay, [&] { spawn(); });
    if (rng.bernoulli(0.3)) cancellable.push_back(id);
    if (rng.bernoulli(0.55)) {
      ++spawned;
      sched.schedule_after(rng.uniform(0.0, 5000.0), [&] { spawn(); });
    }
    if (cancellable.size() > 8 && rng.bernoulli(0.4)) {
      const auto pick = rng.uniform_u64(0, cancellable.size() - 1);
      sched.cancel(cancellable[pick]);
      cancellable.erase(cancellable.begin() + static_cast<long>(pick));
    }
  };
  for (int i = 0; i < 8; ++i) sched.schedule_at(0.0, [&] { spawn(); });
  sched.run_all();
  return trace;
}

TEST(Scheduler, MultiHourTraceBitIdenticalToHeapReference) {
  // The hierarchical wheel's correctness bar at horizons far beyond the
  // 128 s fine span AND beyond the ~36 h coarse span: the (time, seq)
  // trace must match the reference heap exactly.
  for (std::uint64_t seed : {11u, 4242u}) {
    SchedulerConfig wheel_config;  // defaults: two-level wheel
    SchedulerConfig heap_config;
    heap_config.backend = SchedulerBackend::kHeap;
    const auto wheel = run_longhaul_workload(wheel_config, seed);
    const auto heap = run_longhaul_workload(heap_config, seed);
    ASSERT_GT(wheel.size(), 1000u) << "seed=" << seed;
    ASSERT_EQ(wheel.size(), heap.size()) << "seed=" << seed;
    EXPECT_TRUE(wheel == heap) << "seed=" << seed;
  }
}

TEST(Scheduler, CoarseDisabledMatchesTwoLevelTrace) {
  // coarse_bits = 0 reverts to the pre-hierarchical layout (fine wheel +
  // overflow heap only); both layouts must produce the same trace.
  SchedulerConfig flat;
  flat.coarse_bits = 0;
  const auto flat_trace = run_longhaul_workload(flat, 777);
  const auto two_level = run_longhaul_workload(SchedulerConfig{}, 777);
  ASSERT_EQ(flat_trace.size(), two_level.size());
  EXPECT_TRUE(flat_trace == two_level);
}

TEST(Scheduler, CoarseConfigValidationThrows) {
  SchedulerConfig bad;
  bad.coarse_tick_bits = 15;  // must stay strictly below wheel_bits
  EXPECT_THROW(Scheduler{bad}, std::invalid_argument);
  bad = SchedulerConfig{};
  bad.coarse_bits = 25;
  EXPECT_THROW(Scheduler{bad}, std::invalid_argument);
}

TEST(Scheduler, SteadyStateProbePathDoesNotAllocate) {
  // The allocation-free claim, asserted: after warmup, a self-
  // rescheduling probe-like workload must neither grow the event-slot
  // pool nor spill a single callback to the heap.
  Scheduler sched;
  std::uint64_t fired = 0;
  std::function<void()> tick;  // the std::function itself lives outside
  tick = [&] {
    ++fired;
    sched.schedule_after(0.021, [&] { tick(); });
  };
  for (int i = 0; i < 32; ++i) {
    sched.schedule_after(0.001 * i, [&] { tick(); });
  }
  sched.run_until(10.0);  // warmup: pool reaches steady state
  const std::size_t slots = sched.pool_slots();
  const std::uint64_t spills = util::inline_function_heap_allocations();
  const std::uint64_t warm_fired = fired;
  sched.run_until(100.0);
  EXPECT_GT(fired, warm_fired + 100000u);
  EXPECT_EQ(sched.pool_slots(), slots);
  EXPECT_EQ(util::inline_function_heap_allocations(), spills);
}

TEST(Timer, FiresOnceAfterDelay) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] { ++fired; });
  timer.arm(2.0);
  EXPECT_TRUE(timer.armed());
  sched.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, DisarmCancels) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] { ++fired; });
  timer.arm(2.0);
  timer.disarm();
  sched.run_until(10.0);
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmSupersedesPreviousDeadline) {
  Scheduler sched;
  std::vector<double> fire_times;
  Timer timer(sched, [&] { fire_times.push_back(sched.now()); });
  timer.arm(2.0);
  timer.arm(5.0);  // re-arm before expiry
  sched.run_until(10.0);
  EXPECT_EQ(fire_times, std::vector<double>{5.0});
}

TEST(Timer, CallbackMayRearm) {
  Scheduler sched;
  int fired = 0;
  Timer* self = nullptr;
  Timer timer(sched, [&] {
    if (++fired < 3) self->arm(1.0);
  });
  self = &timer;
  timer.arm(1.0);
  sched.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, PeriodicFiresAtPeriodUntilStopped) {
  Simulation sim(1);
  std::vector<double> at;
  auto periodic = sim.every(1.0, [&](double t) { at.push_back(t); });
  sim.run_until(3.5);
  periodic->stop();
  sim.run_until(10.0);
  EXPECT_EQ(at, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Simulation, PeriodicRespectsUntil) {
  Simulation sim(1);
  int count = 0;
  auto periodic = sim.every(1.0, [&](double) { ++count; }, 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
  (void)periodic;
}

TEST(Simulation, PeriodicDestructionStopsFiring) {
  Simulation sim(1);
  int count = 0;
  {
    auto periodic = sim.every(1.0, [&](double) { ++count; });
    sim.run_until(2.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulation, ForkRngIsStableAcrossCalls) {
  Simulation sim(7);
  auto a = sim.fork_rng("x");
  auto b = sim.fork_rng("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace probemon::des
