// Parameterized suite: behaviours every probe protocol must share,
// run across SAPP, DCPP and the fixed-rate baseline.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace probemon::scenario {
namespace {

class ProtocolCommon : public ::testing::TestWithParam<Protocol> {
 protected:
  ExperimentConfig config(std::uint64_t seed, std::size_t cps) const {
    ExperimentConfig c;
    c.protocol = GetParam();
    c.seed = seed;
    c.initial_cps = cps;
    c.metrics.record_delay_series = false;
    return c;
  }
};

TEST_P(ProtocolCommon, EveryCpReachesTheDevice) {
  Experiment exp(config(1, 6));
  exp.run_until(60.0);
  exp.finish();
  for (net::NodeId id : exp.initial_cp_ids()) {
    const auto* cp = exp.cp(id);
    ASSERT_NE(cp, nullptr);
    EXPECT_GT(cp->cycle().cycles_succeeded(), 0u);
    EXPECT_TRUE(cp->device_considered_present());
  }
}

TEST_P(ProtocolCommon, SilentDeviceIsDetectedByAll) {
  Experiment exp(config(2, 6));
  exp.schedule_device_departure(100.0);
  exp.run_until(130.0);
  exp.finish();
  EXPECT_EQ(exp.metrics().detection_latencies().size(), 6u);
  for (double latency : exp.metrics().detection_latencies()) {
    EXPECT_GT(latency, 0.0);
    // One probing period (<= max(10s SAPP delta_max, 1s fixed, 0.6s
    // DCPP)) plus the failed-cycle tail.
    EXPECT_LT(latency, 11.0);
  }
}

TEST_P(ProtocolCommon, NoFalseAlarmsInQuietSteadyState) {
  Experiment exp(config(3, 8));
  exp.run_until(300.0);
  exp.finish();
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    EXPECT_FALSE(m.declared_absent_at.has_value())
        << "false alarm by CP " << id;
  }
}

TEST_P(ProtocolCommon, GracefulByeBeatsProbeTimeout) {
  Experiment exp(config(4, 4));
  exp.schedule_device_departure(50.0, /*graceful=*/true);
  exp.run_until(60.0);
  exp.finish();
  // The last two probers get a bye within a network delay; the rest
  // detect by probing. Everyone must know by 60 s.
  std::size_t know = 0;
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    if (m.declared_absent_at || m.learned_absent_at) ++know;
  }
  EXPECT_EQ(know, 4u);
}

TEST_P(ProtocolCommon, ChurnSafeRemoveDuringFlight) {
  // Removing CPs mid-run must not crash, deadlock, or corrupt others.
  Experiment exp(config(5, 10));
  for (int round = 0; round < 5; ++round) {
    exp.run_until(exp.sim().now() + 10.0);
    exp.remove_random_cp();
    exp.add_cp();
  }
  exp.run_until(exp.sim().now() + 20.0);
  exp.finish();
  EXPECT_EQ(exp.active_cp_count(), 10u);
  EXPECT_GT(exp.metrics().total_probes_received(), 50u);
}

TEST_P(ProtocolCommon, DeterministicAcrossRuns) {
  // Fingerprint with full floating-point resolution: coarse counters are
  // not enough (DCPP's schedule sends an *identical number* of probes
  // under different seeds — the protocol is that deterministic).
  auto fingerprint = [this](std::uint64_t seed) {
    Experiment exp(config(seed, 5));
    exp.run_until(100.0);
    exp.finish();
    double acc = 0;
    for (const auto& [id, m] : exp.metrics().per_cp()) {
      acc += m.delay_moments.mean() + m.delay_moments.variance();
    }
    return std::make_tuple(exp.metrics().total_probes_sent(), acc);
  };
  EXPECT_EQ(fingerprint(9), fingerprint(9));
  EXPECT_NE(fingerprint(9), fingerprint(10));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolCommon,
                         ::testing::Values(Protocol::kSapp, Protocol::kDcpp,
                                           Protocol::kFixedRate),
                         [](const ::testing::TestParamInfo<Protocol>& param) {
                           return to_string(param.param);
                         });

}  // namespace
}  // namespace probemon::scenario
