// Loopback tests for the HTTP observability endpoint: golden bodies
// for every route, error handling (400/404/405), lifecycle hygiene and
// concurrent GETs (the latter is what the TSan build exercises).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "runtime/http_routes.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/history/history.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"

namespace probemon::telemetry {
namespace {

using namespace std::chrono_literals;

/// Minimal blocking HTTP client: one request, read to EOF.
std::string http_request(std::uint16_t port, const std::string& raw) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << "connect to port " << port << ": " << std::strerror(errno);
  std::size_t off = 0;
  while (off < raw.size()) {
    const ssize_t n = send(fd, raw.data() + off, raw.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET " + target +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

std::string status_line(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

TEST(HttpServer, StartStopRestartIsClean) {
  HttpServer server;
  EXPECT_EQ(server.port(), 0);
  EXPECT_FALSE(server.running());
  server.start();
  EXPECT_TRUE(server.running());
  const std::uint16_t port = server.port();
  EXPECT_NE(port, 0);
  server.start();  // idempotent
  EXPECT_EQ(server.port(), port);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  server.start();  // restart after stop
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
}

TEST(HttpServer, RestartOnFixedPortWithAcceptAccounting) {
  // Grab an ephemeral port, release it, and rebind it with a second
  // server — the bind-retry + SO_REUSEADDR path a restarting collector
  // on a pinned port exercises.
  std::uint16_t port = 0;
  {
    HttpServer first;
    first.start();
    port = first.port();
    first.stop();
  }

  HttpServer::Config config;
  config.port = port;
  HttpServer server(config);
  Registry registry;
  server.instrument(registry);
  server.handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "pong\n"};
  });
  server.start();
  EXPECT_EQ(server.port(), port);
  EXPECT_EQ(body_of(http_get(server.port(), "/ping")), "pong\n");
  EXPECT_GE(server.connections_accepted(), 1u);
  EXPECT_EQ(server.connections_shed(), 0u);
  EXPECT_EQ(server.accept_backlog(), 0u);

  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("probemon_http_accept_backlog"), std::string::npos);
  EXPECT_NE(text.find("probemon_http_connections_accepted_total"),
            std::string::npos);
  EXPECT_NE(text.find("probemon_http_connections_shed_total"),
            std::string::npos);

  // Same object, same pinned port, straight back up.
  server.stop();
  server.start();
  EXPECT_EQ(server.port(), port);
  EXPECT_EQ(body_of(http_get(server.port(), "/ping")), "pong\n");
  server.stop();
}

TEST(HttpServer, MetricsRouteServesPrometheusGolden) {
  Registry registry;
  registry.counter("probemon_watch_cycles_total", "Completed cycles",
                   {{"result", "success"}})
      .inc(5);
  registry.gauge("probemon_watches", "Watched devices").set(3);
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // No concurrent writers, so the body must equal the exporter output.
  EXPECT_EQ(body_of(response), to_prometheus(registry));
  EXPECT_NE(body_of(response).find(
                "probemon_watch_cycles_total{result=\"success\"} 5"),
            std::string::npos);
}

TEST(HttpServer, MetricsJsonRouteServesSnapshot) {
  Registry registry;
  registry.counter("probemon_test_total", "A counter").inc(2);
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();

  const std::string response = http_get(server.port(), "/metrics.json");
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_EQ(body_of(response), to_json(registry));
}

TEST(HttpServer, TraceRouteServesJsonAndChromeFormats) {
  ProbeCycleTracer tracer(16);
  ProbeCycleTrace trace;
  trace.cp = 4;
  trace.device = 1;
  trace.cycle = 9;
  trace.start = 1.0;
  trace.end = 1.25;
  trace.attempts = 2;
  trace.success = true;
  trace.rtt = 0.01;
  trace.sends = {1.0, 1.2};
  tracer.record(trace);

  HttpServer server;
  register_trace_routes(server, tracer);
  server.start();

  const std::string json = http_get(server.port(), "/trace");
  EXPECT_EQ(status_line(json), "HTTP/1.1 200 OK");
  EXPECT_EQ(body_of(json), tracer.to_json());

  const std::string chrome =
      http_get(server.port(), "/trace?format=chrome");
  EXPECT_EQ(status_line(chrome), "HTTP/1.1 200 OK");
  const std::string chrome_body = body_of(chrome);
  EXPECT_EQ(chrome_body, tracer.to_chrome_trace());
  // Structural Chrome trace-event checks: a traceEvents array whose
  // events carry ph/ts/pid (what Perfetto needs to load the file).
  EXPECT_NE(chrome_body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome_body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome_body.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome_body.find("\"ts\":"), std::string::npos);
  EXPECT_NE(chrome_body.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(chrome_body.find("\"tid\":4"), std::string::npos);
  // The span starts at the first send (1.0 s -> 1e6 us) and lasts
  // 0.25 s -> 250000 us.
  EXPECT_NE(chrome_body.find("\"ts\":1000000"), std::string::npos);
  EXPECT_NE(chrome_body.find("\"dur\":250000"), std::string::npos);

  const std::string bad = http_get(server.port(), "/trace?format=xml");
  EXPECT_EQ(status_line(bad), "HTTP/1.1 400 Bad Request");
}

TEST(HttpServer, NotFoundUnknownRoute) {
  HttpServer server;
  server.start();
  const std::string response = http_get(server.port(), "/nope");
  EXPECT_EQ(status_line(response), "HTTP/1.1 404 Not Found");
  EXPECT_NE(body_of(response).find("/nope"), std::string::npos);
}

TEST(HttpServer, MethodNotAllowedForNonGet) {
  Registry registry;
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();
  const std::string response = http_request(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_NE(response.find("Allow: GET"), std::string::npos);
}

TEST(HttpServer, MalformedRequestLineIs400) {
  HttpServer server;
  server.start();
  const std::string response =
      http_request(server.port(), "garbage\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 400 Bad Request");
}

TEST(HttpServer, OversizedRequestHeadIs431) {
  HttpServer server({.port = 0, .workers = 1, .max_pending = 4,
                     .max_request_bytes = 256});
  server.start();
  const std::string response = http_request(
      server.port(), "GET /" + std::string(1024, 'a') + " HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_line(response),
            "HTTP/1.1 431 Request Header Fields Too Large");
}

TEST(HttpServer, CountsRequestsAndReportsUptime) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong"};
  });
  server.start();
  EXPECT_EQ(server.requests_served(), 0u);
  http_get(server.port(), "/ping");
  http_get(server.port(), "/ping");
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_GE(server.uptime_seconds(), 0.0);
}

TEST(HttpServer, QueryParametersReachHandlers) {
  HttpServer server;
  server.handle("/echo", [](const HttpRequest& request) {
    std::string out;
    for (const auto& [k, v] : request.query) out += k + '=' + v + ';';
    return HttpResponse{200, "text/plain", out};
  });
  server.start();
  const std::string response =
      http_get(server.port(), "/echo?b=2&a=1&flag");
  EXPECT_EQ(body_of(response), "a=1;b=2;flag=;");
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server;
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaput");
  });
  server.start();
  const std::string response = http_get(server.port(), "/boom");
  EXPECT_EQ(status_line(response), "HTTP/1.1 500 Internal Server Error");
  EXPECT_NE(body_of(response).find("kaput"), std::string::npos);
}

// The TSan target: many clients hammering every route while the
// registry keeps moving underneath, then a stop with requests possibly
// in flight.
TEST(HttpServer, ConcurrentGetsAcrossRoutesAreRaceFree) {
  Registry registry;
  auto& counter = registry.counter("probemon_test_total", "moving target");
  ProbeCycleTracer tracer(64);
  HttpServer server({.port = 0, .workers = 4, .max_pending = 64,
                     .max_request_bytes = 8192});
  register_metrics_routes(server, registry);
  register_trace_routes(server, tracer);
  server.start();
  const std::uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop) {
      counter.inc();
      ProbeCycleTrace trace;
      trace.cp = 1;
      trace.device = 2;
      trace.cycle = ++i;
      trace.sends = {0.1 * static_cast<double>(i)};
      tracer.record(trace);
      std::this_thread::sleep_for(100us);
    }
  });

  constexpr int kClients = 6;
  constexpr int kRequests = 15;
  const char* targets[] = {"/metrics", "/metrics.json", "/trace",
                           "/trace?format=chrome", "/missing"};
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequests; ++r) {
        const std::string response =
            http_get(port, targets[(c + r) % std::size(targets)]);
        if (!response.empty()) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  stop = true;
  writer.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_GE(server.requests_served(),
            static_cast<std::uint64_t>(kClients * kRequests));
  server.stop();
}

// ------------------------------------------------- runtime route wiring

TEST(HttpRoutes, WatchesAndHealthzOverLiveService) {
  runtime::InProcTransportConfig net_config;
  net_config.delay_min = 0.0001;
  net_config.delay_max = 0.0005;
  runtime::InProcTransport transport(net_config);
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.005;
  device_config.d_min = 0.02;
  runtime::RtDcppDevice device(transport, device_config);

  Registry registry;
  ProbeCycleTracer tracer(128);
  check::InvariantAuditor auditor({}, &registry);
  runtime::PresenceService::TelemetryOptions wiring;
  wiring.registry = &registry;
  wiring.tracer = &tracer;
  wiring.auditor = &auditor;
  runtime::PresenceService service(transport, wiring);

  HttpServer server;
  runtime::ObservabilitySources sources;
  sources.registry = &registry;
  sources.tracer = &tracer;
  sources.service = &service;
  sources.auditor = &auditor;
  runtime::register_observability_routes(server, sources);
  server.start();

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.020;
  cp_config.timeouts.tos = 0.015;
  service.watch_dcpp(device.id(), cp_config);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!service.present(device.id()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(service.present(device.id()));

  const std::string watches = body_of(http_get(server.port(), "/watches"));
  EXPECT_EQ(watches, runtime::watches_to_json(service));
  EXPECT_NE(watches.find("\"device\":" + std::to_string(device.id())),
            std::string::npos);
  EXPECT_NE(watches.find("\"state\":\"present\""), std::string::npos);

  const std::string healthz_response = http_get(server.port(), "/healthz");
  EXPECT_NE(healthz_response.find(
                "Content-Type: application/json; charset=utf-8"),
            std::string::npos);
  const std::string healthz = body_of(healthz_response);
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthz.find("\"watches\":1"), std::string::npos);
  EXPECT_NE(healthz.find("\"registry_metrics\":"), std::string::npos);
  EXPECT_NE(healthz.find("\"tracer_capacity\":128"), std::string::npos);
  // The wired auditor reports its (zero) violation tallies per invariant.
  EXPECT_NE(healthz.find("\"invariant_violations_total\":0"),
            std::string::npos);
  EXPECT_NE(healthz.find("\"dcpp_nt_monotone\":0"), std::string::npos);
  EXPECT_EQ(auditor.total_violations(), 0u) << auditor.summary();

  // The acceptance-criteria metric family must be served live.
  const std::string metrics = body_of(http_get(server.port(), "/metrics"));
  EXPECT_NE(metrics.find("probemon_watch_cycles_total"), std::string::npos);

  const std::string index = body_of(http_get(server.port(), "/"));
  for (const char* route :
       {"/metrics", "/metrics.json", "/healthz", "/watches", "/trace"}) {
    EXPECT_NE(index.find(route), std::string::npos) << route;
  }
}

// ------------------------------------------------ error-path hygiene

std::string header_of(const std::string& response, const std::string& name) {
  const std::string needle = "\r\n" + name + ": ";
  const std::size_t pos = response.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  return response.substr(start, response.find("\r\n", start) - start);
}

TEST(HttpServer, ErrorResponsesCarryContentTypeAndExactLength) {
  HttpServer server;
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaput");
  });
  server.start();
  for (const std::string target : {"/nope", "/boom"}) {
    const std::string response = http_get(server.port(), target);
    EXPECT_EQ(header_of(response, "Content-Type"),
              "text/plain; charset=utf-8")
        << target;
    const std::string body = body_of(response);
    EXPECT_EQ(header_of(response, "Content-Length"),
              std::to_string(body.size()))
        << target;
    EXPECT_EQ(body.back(), '\n') << target;  // curl-friendly trailing \n
  }
}

TEST(HttpServer, MetricsRoutesDeclareCharset) {
  Registry registry;
  registry.counter("probemon_x_total").inc(1);
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();
  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(header_of(metrics, "Content-Type"),
            "text/plain; version=0.0.4; charset=utf-8");
  const std::string json = http_get(server.port(), "/metrics.json?full=1");
  EXPECT_EQ(header_of(json, "Content-Type"),
            "application/json; charset=utf-8");
}

// ---------------------------------------------------------- POST routes

TEST(HttpServer, PostRouteReceivesBody) {
  HttpServer server;
  server.handle_post("/push", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "got:" + request.body};
  });
  server.start();
  const std::string body = "{\"agent\":\"n1\"}";
  const std::string response = http_request(
      server.port(), "POST /push HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(body_of(response), "got:" + body);
}

TEST(HttpServer, PostWithoutContentLengthIs411) {
  HttpServer server;
  server.handle_post("/push", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  server.start();
  const std::string response = http_request(
      server.port(), "POST /push HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 411 Length Required");
}

TEST(HttpServer, OversizedPostBodyIs413) {
  HttpServer server({.port = 0, .max_body_bytes = 64});
  server.handle_post("/push", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  server.start();
  const std::string body(1024, 'x');
  const std::string response = http_request(
      server.port(), "POST /push HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_EQ(status_line(response), "HTTP/1.1 413 Payload Too Large");
}

TEST(HttpServer, GetOnPostOnlyRouteIs405WithAllow) {
  HttpServer server;
  server.handle_post("/push", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  server.start();
  const std::string response = http_get(server.port(), "/push");
  EXPECT_EQ(status_line(response), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_EQ(header_of(response, "Allow"), "POST");
}

// --------------------------------------------------------- delta routes

TEST(HttpServer, MetricsRouteServesDeltasAfterFirstScrape) {
  Registry registry;
  auto& c = registry.counter("probemon_x_total", "X");
  c.inc(1);
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();

  // First scrape: full. Second with nothing changed: empty delta.
  EXPECT_EQ(body_of(http_get(server.port(), "/metrics")),
            to_prometheus(registry));
  EXPECT_EQ(body_of(http_get(server.port(), "/metrics")), "");

  // A change shows up in the next delta; ?full=1 always returns all.
  c.inc(1);
  const std::string delta = body_of(http_get(server.port(), "/metrics"));
  EXPECT_NE(delta.find("probemon_x_total 2"), std::string::npos);
  EXPECT_EQ(body_of(http_get(server.port(), "/metrics?full=1")),
            to_prometheus(registry));
  // ?full=0 is not an escape hatch.
  EXPECT_EQ(body_of(http_get(server.port(), "/metrics?full=0")), "");
}

TEST(HttpServer, TraceRouteSupportsSinceCursor) {
  ProbeCycleTracer tracer(16);
  ProbeCycleTrace trace;
  trace.cp = 1;
  trace.cycle = 1;
  tracer.record(trace);

  HttpServer server;
  register_trace_routes(server, tracer);
  server.start();

  std::uint64_t cursor = 0;
  const std::string first =
      body_of(http_get(server.port(), "/trace?format=json&since=0"));
  EXPECT_EQ(first, tracer.to_json_since(cursor));
  EXPECT_NE(first.find("\"next\":1"), std::string::npos);
  // Nothing new since cursor 1 -> empty trace list, same cursor.
  const std::string quiet =
      body_of(http_get(server.port(), "/trace?format=json&since=1"));
  EXPECT_NE(quiet.find("\"traces\":[]"), std::string::npos);

  const std::string bad =
      http_get(server.port(), "/trace?format=json&since=-1");
  EXPECT_EQ(status_line(bad), "HTTP/1.1 400 Bad Request");
}

// ------------------------------------------------------- HEAD handling

TEST(HttpServer, HeadReturnsHeadersWithoutBody) {
  Registry registry;
  registry.counter("probemon_x_total").inc(3);
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();

  // ?full=1 makes GET and HEAD bodies identical regardless of cursor
  // state, so HEAD's Content-Length must equal the real body size.
  const std::string get = http_get(server.port(), "/metrics.json?full=1");
  const std::string head = http_request(
      server.port(),
      "HEAD /metrics.json?full=1 HTTP/1.1\r\nHost: x\r\n"
      "Connection: close\r\n\r\n");
  EXPECT_EQ(status_line(head), "HTTP/1.1 200 OK");
  EXPECT_EQ(header_of(head, "Content-Length"),
            std::to_string(body_of(get).size()));
  EXPECT_EQ(header_of(head, "Content-Type"), header_of(get, "Content-Type"));
  EXPECT_EQ(body_of(head), "");

  // The blocking client agrees: status + headers, empty body.
  const auto result = http_head("127.0.0.1", server.port(), "/metrics?full=1");
  EXPECT_EQ(result.status, 200);
  EXPECT_TRUE(result.body.empty());
  EXPECT_NE(result.headers.find("Content-Length: "), std::string::npos);
}

TEST(HttpServer, HeadErrorsMirrorGetStatusWithoutBody) {
  HttpServer server;
  server.start();
  const std::string head = http_request(
      server.port(),
      "HEAD /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(status_line(head), "HTTP/1.1 404 Not Found");
  EXPECT_NE(header_of(head, "Content-Length"), "0");
  EXPECT_EQ(body_of(head), "");
}

TEST(HttpServer, HeadOnPostOnlyRouteIs405) {
  HttpServer server;
  server.handle_post("/push", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  server.start();
  const std::string head = http_request(
      server.port(),
      "HEAD /push HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(status_line(head), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_EQ(header_of(head, "Allow"), "POST");
}

TEST(HttpServer, AllowHeaderAdvertisesHead) {
  Registry registry;
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();
  const std::string post = http_request(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(header_of(post, "Allow"), "GET, HEAD");
  const std::string put = http_request(
      server.port(),
      "PUT /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(status_line(put), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_EQ(header_of(put, "Allow"), "GET, HEAD, POST");
}

// ----------------------------------------- malformed query parameters

TEST(HttpServer, MalformedFullFlagIs400WithJsonBody) {
  Registry registry;
  HttpServer server;
  register_metrics_routes(server, registry);
  server.start();
  for (const std::string target :
       {"/metrics?full=2", "/metrics?full=yes", "/metrics.json?full=",
        "/metrics.json?full=x"}) {
    const std::string response = http_get(server.port(), target);
    EXPECT_EQ(status_line(response), "HTTP/1.1 400 Bad Request") << target;
    EXPECT_EQ(header_of(response, "Content-Type"),
              "application/json; charset=utf-8")
        << target;
    const std::string body = body_of(response);
    EXPECT_NE(body.find("\"error\":"), std::string::npos) << body;
    EXPECT_NE(body.find("full must be 0 or 1"), std::string::npos) << body;
    EXPECT_NE(body.find("\"status\":400"), std::string::npos) << body;
  }
  // Valid values still work.
  EXPECT_EQ(status_line(http_get(server.port(), "/metrics?full=1")),
            "HTTP/1.1 200 OK");
}

TEST(HttpServer, MalformedSinceCursorIs400WithJsonBody) {
  ProbeCycleTracer tracer(8);
  HttpServer server;
  register_trace_routes(server, tracer);
  server.start();
  for (const std::string target :
       {"/trace?since=abc", "/trace?since=", "/trace?since=1x",
        "/trace?since=-1"}) {
    const std::string response = http_get(server.port(), target);
    EXPECT_EQ(status_line(response), "HTTP/1.1 400 Bad Request") << target;
    EXPECT_EQ(header_of(response, "Content-Type"),
              "application/json; charset=utf-8")
        << target;
    const std::string body = body_of(response);
    EXPECT_NE(body.find("\"error\":"), std::string::npos) << body;
    EXPECT_NE(body.find("since must be a non-negative integer"),
              std::string::npos)
        << body;
  }
  EXPECT_EQ(status_line(http_get(server.port(), "/trace?since=0")),
            "HTTP/1.1 200 OK");
}

// ------------------------------------------------ /query and /alerts

TEST(HttpRoutes, QueryEndpointEvaluatesExpressions) {
  Registry registry;
  auto& gauge = registry.gauge("probemon_load");
  TimeSeriesHistory history(registry, {.sample_period_s = 1.0, .slots = 16});
  history.track("probemon_load");
  gauge.set(2.0);
  history.sample(1.0);
  gauge.set(4.0);
  history.sample(2.0);

  HttpServer server;
  runtime::ObservabilitySources sources;
  sources.registry = &registry;
  sources.history = &history;
  runtime::register_observability_routes(server, sources);
  server.start();

  const std::string ok =
      http_get(server.port(), "/query?expr=probemon_load");
  EXPECT_EQ(status_line(ok), "HTTP/1.1 200 OK");
  EXPECT_NE(body_of(ok).find("\"value\":4"), std::string::npos)
      << body_of(ok);
  EXPECT_NE(body_of(ok).find("\"as_of\":2"), std::string::npos);

  const std::string avg = http_get(
      server.port(), "/query?expr=avg(probemon_load[10])&range=10");
  EXPECT_NE(body_of(avg).find("\"value\":3"), std::string::npos)
      << body_of(avg);

  // No data in a 0.1 s window -> JSON null, not NaN.
  gauge.set(9.0);
  const std::string nodata = http_get(
      server.port(), "/query?expr=rate(probemon_nope_total[5])");
  EXPECT_EQ(status_line(nodata), "HTTP/1.1 200 OK");
  EXPECT_NE(body_of(nodata).find("\"value\":null"), std::string::npos)
      << body_of(nodata);

  for (const std::string target :
       {"/query", "/query?expr=", "/query?expr=rate(",
        "/query?expr=probemon_load&range=0",
        "/query?expr=probemon_load&range=abc"}) {
    const std::string response = http_get(server.port(), target);
    EXPECT_EQ(status_line(response), "HTTP/1.1 400 Bad Request") << target;
    EXPECT_NE(body_of(response).find("\"error\":"), std::string::npos)
        << body_of(response);
  }
}

TEST(HttpRoutes, AlertsEndpointServesAndFiltersState) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "agent_absent";
  engine.add_condition_rule(rule);
  engine.set_condition("agent_absent", {{"agent", "a"}}, true, 7.0, 3.0);
  engine.set_condition("agent_absent", {{"agent", "b"}}, false, 0.1, 3.0);

  HttpServer server;
  runtime::register_alert_routes(server, engine);
  server.start();

  const std::string all = http_get(server.port(), "/alerts");
  EXPECT_EQ(status_line(all), "HTTP/1.1 200 OK");
  EXPECT_EQ(header_of(all, "Content-Type"),
            "application/json; charset=utf-8");
  EXPECT_EQ(body_of(all), alerts_to_json(engine));

  const std::string firing =
      http_get(server.port(), "/alerts?state=firing");
  EXPECT_EQ(body_of(firing), alerts_to_json(engine, "firing"));
  EXPECT_NE(body_of(firing).find("\"agent\":\"a\""), std::string::npos);
  EXPECT_EQ(body_of(firing).find("\"agent\":\"b\""), std::string::npos);

  const std::string bad = http_get(server.port(), "/alerts?state=loud");
  EXPECT_EQ(status_line(bad), "HTTP/1.1 400 Bad Request");
  EXPECT_NE(body_of(bad).find("\"error\":"), std::string::npos);
}

}  // namespace
}  // namespace probemon::telemetry
