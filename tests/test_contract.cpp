// Tests for the PROBEMON_INVARIANT / PROBEMON_CONTRACT macro family and
// its failure-handler plumbing. The macro expansion differs by build
// (checked: evaluate + report; default: compiled out), so the
// build-dependent sections are guarded on check::kChecked.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/contract.hpp"

namespace probemon::check {
namespace {

TEST(ContractViolation, ToStringCarriesAllParts) {
  ContractViolation violation{"contract", "file.cpp", 42, "x > 0",
                              "x was -1"};
  const std::string text = violation.to_string();
  EXPECT_NE(text.find("contract"), std::string::npos);
  EXPECT_NE(text.find("file.cpp:42"), std::string::npos);
  EXPECT_NE(text.find("x > 0"), std::string::npos);
  EXPECT_NE(text.find("x was -1"), std::string::npos);
}

TEST(FailureHandler, FailDispatchesToInstalledHandler) {
  std::vector<ContractViolation> seen;
  ScopedFailureHandler guard(
      [&](const ContractViolation& v) { seen.push_back(v); });
  fail("invariant", "here.cpp", 7, "cond", "detail text");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_STREQ(seen[0].kind, "invariant");
  EXPECT_EQ(seen[0].line, 7);
  EXPECT_EQ(seen[0].detail, "detail text");
}

TEST(FailureHandler, ScopedHandlerRestoresPrevious) {
  std::vector<int> outer_hits;
  ScopedFailureHandler outer(
      [&](const ContractViolation&) { outer_hits.push_back(1); });
  {
    std::vector<int> inner_hits;
    ScopedFailureHandler inner(
        [&](const ContractViolation&) { inner_hits.push_back(1); });
    fail("invariant", "f", 1, "c", "");
    EXPECT_EQ(inner_hits.size(), 1u);
    EXPECT_TRUE(outer_hits.empty());
  }
  fail("invariant", "f", 2, "c", "");
  EXPECT_EQ(outer_hits.size(), 1u);
}

#if defined(PROBEMON_CHECKED) && PROBEMON_CHECKED

TEST(ContractMacros, FailingInvariantReportsWithStreamedDetail) {
  static_assert(kChecked);
  std::vector<ContractViolation> seen;
  ScopedFailureHandler guard(
      [&](const ContractViolation& v) { seen.push_back(v); });
  const int x = -3;
  PROBEMON_INVARIANT(x >= 0, "x went negative: " << x);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_STREQ(seen[0].kind, "invariant");
  EXPECT_NE(std::string(seen[0].expression).find("x >= 0"),
            std::string::npos);
  EXPECT_EQ(seen[0].detail, "x went negative: -3");
}

TEST(ContractMacros, ContractUsesContractKind) {
  std::vector<ContractViolation> seen;
  ScopedFailureHandler guard(
      [&](const ContractViolation& v) { seen.push_back(v); });
  PROBEMON_CONTRACT(false);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_STREQ(seen[0].kind, "contract");
  EXPECT_TRUE(seen[0].detail.empty());
}

TEST(ContractMacros, PassingCheckEvaluatesConditionOnceAndStaysQuiet) {
  std::vector<ContractViolation> seen;
  ScopedFailureHandler guard(
      [&](const ContractViolation& v) { seen.push_back(v); });
  int evaluations = 0;
  PROBEMON_INVARIANT(++evaluations > 0, "never shown");
  EXPECT_EQ(evaluations, 1);
  EXPECT_TRUE(seen.empty());
}

#else  // default build: the macros compile out entirely

TEST(ContractMacros, CompiledOutConditionIsNotEvaluated) {
  static_assert(!kChecked);
  int evaluations = 0;
  PROBEMON_INVARIANT(++evaluations > 0, "never shown");
  PROBEMON_CONTRACT(++evaluations > 0, "never shown");
  EXPECT_EQ(evaluations, 0);
}

#endif

}  // namespace
}  // namespace probemon::check
