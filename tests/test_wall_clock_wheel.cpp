// Tests for des::WallClockTimerWheel — the monotonic-clock seam over
// the DES hashed timer wheel that drives the event-loop runtime.
//
// advance_to() takes caller-supplied time, so everything here runs on
// synthetic schedules (deterministic, instant); only one smoke test
// touches the real steady clock via now()/poll().
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "des/wall_clock.hpp"

namespace probemon::des {
namespace {

TEST(WallClockWheel, FireOrderEquivalentToDesWheel) {
  // The same deadline set, scheduled identically on the wall-clock
  // wheel and on a plain DES Scheduler (wheel backend), must fire in
  // the same (deadline, schedule-order) sequence at every horizon.
  const std::vector<double> deadlines = {
      0.50, 0.022, 0.022, 10.0, 0.0215, 3.25, 0.0625, 0.50,
      128.5, 0.001, 2.0,   2.0,  0.75,   0.0625};

  WallClockTimerWheel wall;
  Scheduler des;  // default SchedulerConfig: kWheel backend
  std::vector<int> wall_order;
  std::vector<int> des_order;
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    const int tag = static_cast<int>(i);
    wall.schedule_at(deadlines[i], [&wall_order, tag] {
      wall_order.push_back(tag);
    });
    des.schedule_at(deadlines[i], [&des_order, tag] {
      des_order.push_back(tag);
    });
  }

  const std::vector<double> horizons = {0.021, 0.03, 0.10, 1.0, 4.0, 200.0};
  for (double h : horizons) {
    wall.advance_to(h);
    des.run_until(h);
    EXPECT_EQ(wall_order, des_order) << "divergence at horizon " << h;
  }
  EXPECT_EQ(wall_order.size(), deadlines.size());
  EXPECT_EQ(wall.fired_count(), deadlines.size());
}

TEST(WallClockWheel, PastDeadlineClampsToNextAdvance) {
  WallClockTimerWheel wheel;
  wheel.advance_to(5.0);
  int fired = 0;
  // A deadline computed before a stall/suspend lands in the past; it
  // must clamp to "next advance", not throw or get lost.
  const EventId id = wheel.schedule_at(1.0, [&fired] { ++fired; });
  EXPECT_TRUE(wheel.pending(id));
  EXPECT_EQ(wheel.timeout_ms(5.0), 0);  // already due
  wheel.advance_to(5.0001);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(wheel.pending(id));

  // Negative schedule_after delays clamp the same way.
  wheel.schedule_after(-3.0, [&fired] { ++fired; });
  wheel.advance_to(5.001);
  EXPECT_EQ(fired, 2);
}

TEST(WallClockWheel, MonotonicReArmAfterLargeJump) {
  WallClockTimerWheel wheel;
  std::vector<std::string> log;
  wheel.schedule_at(0.5, [&log] { log.push_back("pre-jump"); });
  wheel.schedule_at(7200.0, [&log] { log.push_back("far"); });

  // A laptop suspend / debugger stop shows up as one huge advance: the
  // wheel window-jumps the silent gap and fires everything due.
  wheel.advance_to(10000.0);
  ASSERT_EQ(log, (std::vector<std::string>{"pre-jump", "far"}));

  // Re-arming after the jump stays on the same time base.
  wheel.schedule_after(0.25, [&log] { log.push_back("post-jump"); });
  EXPECT_GT(wheel.next_deadline(), 10000.0);
  wheel.advance_to(10000.2);
  EXPECT_EQ(log.size(), 2u);  // not yet due
  wheel.advance_to(10000.3);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.back(), "post-jump");

  // Time never runs backwards: a stale advance is a no-op.
  wheel.schedule_after(0.1, [&log] { log.push_back("late"); });
  const std::uint64_t fired = wheel.advance_to(9000.0);
  EXPECT_EQ(fired, 0u);
  EXPECT_DOUBLE_EQ(wheel.advanced(), 10000.3);
  wheel.advance_to(10000.5);
  EXPECT_EQ(log.back(), "late");
}

TEST(WallClockWheel, CancellationUnderChurn) {
  // The runtime's dominant pattern: arm a timeout, cancel it when the
  // reply arrives, immediately arm the next. Mass-cancel half the
  // population across interleaved advances and verify only survivors
  // fire, exactly once.
  WallClockTimerWheel wheel;
  constexpr int kTimers = 2000;
  std::vector<EventId> ids(kTimers);
  std::vector<int> fire_count(kTimers, 0);
  for (int i = 0; i < kTimers; ++i) {
    const double deadline = 0.001 * (i + 1);
    ids[i] = wheel.schedule_at(deadline, [&fire_count, i] {
      ++fire_count[i];
    });
  }
  // Cancel the odd half before anything fires.
  for (int i = 1; i < kTimers; i += 2) {
    EXPECT_TRUE(wheel.cancel(ids[i]));
    EXPECT_FALSE(wheel.pending(ids[i]));
    EXPECT_FALSE(wheel.cancel(ids[i]));  // double-cancel is a no-op
  }
  EXPECT_EQ(wheel.pending_count(), static_cast<std::size_t>(kTimers / 2));

  // Advance through the schedule in steps, churning re-arms: each even
  // timer that fires schedules a successor that is cancelled before it
  // can fire.
  std::vector<EventId> successors;
  wheel.advance_to(0.5);
  for (int i = 0; i < kTimers; i += 2) {
    if (fire_count[i] == 1) {
      successors.push_back(
          wheel.schedule_after(10.0, [&fire_count, i] { ++fire_count[i]; }));
    }
  }
  for (EventId id : successors) EXPECT_TRUE(wheel.cancel(id));
  wheel.advance_to(50.0);

  for (int i = 0; i < kTimers; ++i) {
    EXPECT_EQ(fire_count[i], i % 2 == 0 ? 1 : 0) << "timer " << i;
  }
  EXPECT_EQ(wheel.pending_count(), 0u);
}

TEST(WallClockWheel, TimeoutMsShapes) {
  WallClockTimerWheel wheel;
  EXPECT_EQ(wheel.timeout_ms(0.0), -1);  // nothing pending: sleep freely

  wheel.schedule_at(1.0, [] {});
  EXPECT_EQ(wheel.timeout_ms(0.9995), 1);  // rounded UP, never early
  // ~10 ms out; allow one ms of ceil-after-float-subtraction slack.
  EXPECT_GE(wheel.timeout_ms(0.990), 10);
  EXPECT_LE(wheel.timeout_ms(0.990), 11);
  EXPECT_EQ(wheel.timeout_ms(1.0), 0);       // due now
  EXPECT_EQ(wheel.timeout_ms(2.0), 0);       // overdue
  EXPECT_EQ(wheel.timeout_ms(0.0), 1000);    // capped at default max
  EXPECT_EQ(wheel.timeout_ms(0.0, 250), 250);  // custom cap
}

TEST(WallClockWheel, RealClockSmoke) {
  // The one wall-clock-touching test: now() is monotone and poll()
  // fires a short timer within a generous real-time bound.
  WallClockTimerWheel wheel;
  const double t0 = wheel.now();
  int fired = 0;
  wheel.schedule_after(0.01, [&fired] { ++fired; });
  while (fired == 0 && wheel.now() < t0 + 2.0) wheel.poll();
  EXPECT_EQ(fired, 1);
  EXPECT_GE(wheel.now(), t0 + 0.01);
  EXPECT_GE(wheel.now(), wheel.advanced());
}

}  // namespace
}  // namespace probemon::des
