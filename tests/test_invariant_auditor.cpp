// Tests for check::InvariantAuditor: clean reference scenarios audit to
// zero, and deliberately violating event sequences trip exactly the
// advertised counter. The deliberate-violation tests drive the observer
// hooks directly — the protocol implementations (correctly) refuse to
// produce such sequences.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "check/invariant_auditor.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "scenario/experiment.hpp"
#include "telemetry/registry.hpp"

namespace probemon::check {
namespace {

TEST(InvariantCatalogue, EveryEntryHasAStableLabel) {
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    const std::string label = to_string(static_cast<Invariant>(i));
    EXPECT_FALSE(label.empty());
    EXPECT_NE(label, "?");
  }
}

// --- clean reference scenarios audit to zero --------------------------------

TEST(InvariantAuditor, CleanDcppExperimentReportsZero) {
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kDcpp;
  config.seed = 11;
  config.initial_cps = 8;
  scenario::Experiment exp(config);
  exp.schedule_device_departure(25.0);
  exp.run_until(40.0);
  exp.finish();
  ASSERT_NE(exp.auditor(), nullptr);
  EXPECT_EQ(exp.auditor()->total_violations(), 0u)
      << exp.auditor()->summary();
}

TEST(InvariantAuditor, CleanSappExperimentReportsZero) {
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = 12;
  config.initial_cps = 10;
  scenario::Experiment exp(config);
  exp.run_until(30.0);
  exp.finish();
  ASSERT_NE(exp.auditor(), nullptr);
  EXPECT_EQ(exp.auditor()->total_violations(), 0u)
      << exp.auditor()->summary();
}

TEST(InvariantAuditor, AuditingCanBeDisabled) {
  scenario::ExperimentConfig config;
  config.audit_invariants = false;
  scenario::Experiment exp(config);
  EXPECT_EQ(exp.auditor(), nullptr);
}

// --- deliberate violations trip the advertised counter ----------------------

AuditConfig dcpp_audit() {
  AuditConfig config;
  config.audit_dcpp = true;  // paper defaults: delta_min 0.1, d_min 0.5
  return config;
}

TEST(InvariantAuditor, NonMonotoneNtTripsDcppMonotone) {
  InvariantAuditor auditor(dcpp_audit());
  // Legitimate grant: frontier 1.0, probe at t=2.0 -> nt = 2.0 + d_min.
  auditor.on_slot_granted(1, 2.0, 1.0, 2.5);
  EXPECT_EQ(auditor.total_violations(), 0u);
  // Regression: the next grant lands BEHIND both the frontier and the
  // previous slot.
  auditor.on_slot_granted(1, 3.0, 2.5, 2.0);
  EXPECT_EQ(auditor.violations(Invariant::kDcppNtMonotone), 1u);
  EXPECT_EQ(auditor.total_violations(), 1u);  // formula check not echoed
}

TEST(InvariantAuditor, WrongGrantWaitTripsFormula) {
  InvariantAuditor auditor(dcpp_audit());
  // Delta(nt=1.0, t=2.0) = max{0.1, 0.5 - 0} applied to frontier 2.0
  // -> slot 2.5; granting 2.75 is monotone but off-formula.
  auditor.on_slot_granted(1, 2.0, 1.0, 2.75);
  EXPECT_EQ(auditor.violations(Invariant::kDcppGrantFormula), 1u);
  EXPECT_EQ(auditor.violations(Invariant::kDcppNtMonotone), 0u);
}

TEST(InvariantAuditor, SlotsCloserThanDeltaMinTripFormula) {
  AuditConfig config = dcpp_audit();
  config.dcpp.delta_min = 0.1;
  config.dcpp.d_min = 0.1;  // backlogged regime: waits collapse to delta_min
  InvariantAuditor auditor(config);
  auditor.on_slot_granted(1, 1.0, 5.0, 5.1);
  EXPECT_EQ(auditor.total_violations(), 0u);
  // 5.13 is monotone and d_min ahead of its own probe, but only 0.03
  // after the previous slot — constraint (i) violated.
  auditor.on_slot_granted(1, 5.03, 5.1, 5.13);
  EXPECT_GE(auditor.violations(Invariant::kDcppGrantFormula), 1u);
}

TEST(InvariantAuditor, FiveProbeCycleTripsOverrun) {
  InvariantAuditor auditor;  // default timeouts: max 3 retransmissions
  for (std::uint8_t attempt = 0; attempt < 5; ++attempt) {
    auditor.on_probe_sent(1, 9, 0.1 * attempt, attempt);
  }
  EXPECT_EQ(auditor.violations(Invariant::kCycleOverrun), 1u);
  EXPECT_EQ(auditor.violations(Invariant::kCycleOrder), 0u);
}

TEST(InvariantAuditor, NonConsecutiveAttemptTripsCycleOrder) {
  InvariantAuditor auditor;
  auditor.on_probe_sent(1, 9, 0.0, 0);
  auditor.on_probe_sent(1, 9, 0.1, 2);  // skipped attempt 1
  EXPECT_EQ(auditor.violations(Invariant::kCycleOrder), 1u);
}

TEST(InvariantAuditor, FourProbeCycleWithAbsenceIsClean) {
  InvariantAuditor auditor;
  for (std::uint8_t attempt = 0; attempt < 4; ++attempt) {
    auditor.on_probe_sent(1, 9, 0.1 * attempt, attempt);
  }
  auditor.on_device_declared_absent(1, 9, 0.5);
  EXPECT_EQ(auditor.total_violations(), 0u) << auditor.summary();
}

TEST(InvariantAuditor, EarlyAbsenceTripsNotExhausted) {
  InvariantAuditor auditor;
  auditor.on_probe_sent(1, 9, 0.0, 0);
  auditor.on_probe_sent(1, 9, 0.1, 1);
  auditor.on_device_declared_absent(1, 9, 0.2);  // 2 of 4 probes sent
  EXPECT_EQ(auditor.violations(Invariant::kAbsenceNotExhausted), 1u);
}

TEST(InvariantAuditor, OutOfClampDelayTripsSappClamp) {
  AuditConfig config;
  config.audit_delay_clamp = true;
  config.delta_min = 0.02;
  config.delta_max = 10.0;
  InvariantAuditor auditor(config);
  auditor.on_delay_updated(1, 0.0, 0.02);   // at the lower clamp: fine
  auditor.on_delay_updated(1, 1.0, 10.0);   // at the upper clamp: fine
  EXPECT_EQ(auditor.total_violations(), 0u);
  auditor.on_delay_updated(1, 2.0, 15.0);   // escaped the clamp
  EXPECT_EQ(auditor.violations(Invariant::kSappDelayClamp), 1u);
  auditor.on_delay_updated(1, 3.0, 0.001);  // below delta_min
  EXPECT_EQ(auditor.violations(Invariant::kSappDelayClamp), 2u);
}

TEST(InvariantAuditor, NegativeDelayAlwaysTrips) {
  InvariantAuditor auditor;  // clamp audit off: finiteness still enforced
  auditor.on_delay_updated(1, 0.0, -0.5);
  EXPECT_EQ(auditor.violations(Invariant::kSappDelayClamp), 1u);
}

TEST(InvariantAuditor, MoreRepliesThanProbesTripsCounterConsistency) {
  InvariantAuditor auditor;
  auditor.on_probe_sent(1, 9, 0.0, 0);
  auditor.on_probe_received(9, 1, 0.01);
  EXPECT_EQ(auditor.total_violations(), 0u);
  auditor.on_probe_received(9, 1, 0.02);  // a reply nobody asked for
  EXPECT_EQ(auditor.violations(Invariant::kCounterConsistency), 1u);
}

TEST(InvariantAuditor, WindowLoadBeyondBetaLNomTrips) {
  AuditConfig config;
  config.load_l_nom = 10.0;
  config.load_beta = 1.0;
  config.load_window = 1.0;
  config.load_slack_probes = 0;  // limit: 10 probes per second
  InvariantAuditor auditor(config);
  for (int i = 0; i < 12; ++i) {
    const double t = 0.05 * i;  // 12 probes in 0.6 s
    auditor.on_probe_sent(net::NodeId(100 + i), 9, t, 0);
    auditor.on_probe_received(9, net::NodeId(100 + i), t);
  }
  EXPECT_GE(auditor.violations(Invariant::kDeviceLoad), 1u);
  EXPECT_EQ(auditor.violations(Invariant::kCounterConsistency), 0u);
}

// --- trace-side audits ------------------------------------------------------

telemetry::ProbeCycleTrace clean_trace() {
  telemetry::ProbeCycleTrace trace;
  trace.cp = 1;
  trace.device = 9;
  trace.cycle = 3;
  trace.start = 1.0;
  trace.end = 1.05;
  trace.attempts = 2;
  trace.success = true;
  trace.rtt = 0.004;
  trace.sends = {1.0, 1.04};
  return trace;
}

TEST(InvariantAuditor, CleanTraceAuditsToZero) {
  InvariantAuditor auditor;
  auditor.audit_cycle(clean_trace());
  EXPECT_EQ(auditor.total_violations(), 0u) << auditor.summary();
}

TEST(InvariantAuditor, MalformedTracesTripTraceShape) {
  InvariantAuditor auditor;
  auto trace = clean_trace();
  trace.sends = {1.04, 1.0};  // out of order
  auditor.audit_cycle(trace);
  EXPECT_EQ(auditor.violations(Invariant::kTraceShape), 2u)
      << auditor.summary();  // order + first-send-vs-start both fire
}

TEST(InvariantAuditor, OverlongTraceTripsOverrun) {
  InvariantAuditor auditor;
  auto trace = clean_trace();
  trace.attempts = 5;
  trace.sends = {1.0, 1.01, 1.02, 1.03, 1.04};
  auditor.audit_cycle(trace);
  EXPECT_EQ(auditor.violations(Invariant::kCycleOverrun), 1u);
}

TEST(InvariantAuditor, FailedTraceWithSpareAttemptsTripsNotExhausted) {
  InvariantAuditor auditor;
  auto trace = clean_trace();
  trace.success = false;
  trace.rtt = 0.0;
  auditor.audit_cycle(trace);  // only 2 of 4 attempts used
  EXPECT_EQ(auditor.violations(Invariant::kAbsenceNotExhausted), 1u);
}

TEST(InvariantAuditor, TracerBookkeepingAudit) {
  telemetry::ProbeCycleTracer tracer(4);
  for (int i = 0; i < 6; ++i) tracer.record(clean_trace());
  InvariantAuditor auditor;
  auditor.audit_tracer(tracer);
  EXPECT_EQ(auditor.total_violations(), 0u);
}

// --- telemetry and diagnostics ----------------------------------------------

TEST(InvariantAuditor, ViolationsSurfaceInRegistryAndReports) {
  telemetry::Registry registry;
  InvariantAuditor auditor({}, &registry);
  auditor.on_probe_sent(1, 9, 0.0, 0);
  auditor.on_probe_sent(1, 9, 0.1, 3);  // out of order
  const auto& counter = registry.counter(
      "probemon_invariant_violations_total", "",
      {{"invariant", "cycle_order"}});
  EXPECT_EQ(counter.value(), 1u);
  const auto reports = auditor.recent_reports();
  ASSERT_FALSE(reports.empty());
  EXPECT_NE(reports.back().find("cycle_order"), std::string::npos);
  EXPECT_NE(auditor.summary().find("cycle_order"), std::string::npos);
}

// --- runtime path: PresenceService feeds the auditor ------------------------

TEST(InvariantAuditor, RuntimeWatchAuditsToZero) {
  using namespace std::chrono_literals;
  runtime::InProcTransportConfig net;
  net.delay_min = 0.0001;
  net.delay_max = 0.0005;
  runtime::InProcTransport transport(net);
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.005;
  device_config.d_min = 0.02;
  runtime::RtDcppDevice device(transport, device_config);

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.020;
  cp_config.timeouts.tos = 0.015;
  AuditConfig audit;
  audit.timeouts = cp_config.timeouts;
  InvariantAuditor auditor(audit);

  runtime::PresenceService service(transport, {nullptr, nullptr, &auditor});
  service.watch_dcpp(device.id(), cp_config);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!service.present(device.id()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(service.present(device.id()));
  device.go_silent();
  while (service.presence(device.id()) != runtime::Presence::kAbsent &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  service.unwatch(device.id());
  EXPECT_EQ(auditor.total_violations(), 0u) << auditor.summary();
}

}  // namespace
}  // namespace probemon::check
