// Tests for the logging facility: level gating, sink capture, macros.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/logging.hpp"

namespace probemon::util {
namespace {

struct SinkCapture {
  std::vector<std::pair<LogLevel, std::string>> lines;
  Logger::Sink previous;
  LogLevel previous_level;

  SinkCapture() {
    previous_level = Logger::instance().level();
    previous = Logger::instance().set_sink(
        [this](LogLevel level, const std::string& msg) {
          lines.emplace_back(level, msg);
        });
  }
  ~SinkCapture() {
    Logger::instance().set_sink(std::move(previous));
    Logger::instance().set_level(previous_level);
  }
};

TEST(Logging, LevelGatesOutput) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  PLOG_DEBUG << "hidden";
  PLOG_INFO << "hidden too";
  PLOG_WARN << "visible";
  PLOG_ERROR << "also visible";
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.lines[0].first, LogLevel::kWarn);
  EXPECT_EQ(capture.lines[0].second, "visible");
  EXPECT_EQ(capture.lines[1].first, LogLevel::kError);
}

TEST(Logging, StreamFormatting) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kTrace);
  PLOG_INFO << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0].second, "x=42 y=1.5");
}

TEST(Logging, OffSilencesEverything) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kOff);
  PLOG_ERROR << "nope";
  EXPECT_TRUE(capture.lines.empty());
}

TEST(Logging, EnabledReflectsLevel) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

// The guard in PROBEMON_LOG must not evaluate the stream expression
// when the level is disabled (cheap hot paths).
TEST(Logging, DisabledLevelSkipsEvaluation) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "value";
  };
  PLOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
  PLOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace probemon::util
