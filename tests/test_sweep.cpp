// SweepRunner determinism contract (see sweep.hpp): job-ordered results
// and merged counter/bucket values must be identical for any thread
// count, experiment batches must reproduce bit-exactly on both scheduler
// backends, and failures must surface as the lowest-numbered job's
// exception. These tests execute the same work at 1, 2, and N threads
// and compare outputs field-by-field.
#include "scenario/sweep.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "scenario/experiment.hpp"
#include "telemetry/registry.hpp"

namespace probemon::scenario {
namespace {

const telemetry::Sample* find_sample(const std::vector<telemetry::Sample>& ss,
                                     const std::string& name) {
  for (const auto& s : ss) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(SweepRunner, MapReturnsJobOrderedResults) {
  SweepRunner runner(3);
  const auto out = runner.map<std::size_t>(
      40, [](std::size_t job, SweepWorkerContext&) { return job * job; });
  ASSERT_EQ(out.size(), 40u);
  for (std::size_t j = 0; j < out.size(); ++j) EXPECT_EQ(out[j], j * j);
}

TEST(SweepRunner, ZeroThreadsPicksAtLeastOneWorker) {
  SweepRunner runner(0);
  EXPECT_GE(runner.thread_count(), 1u);
  const auto out = runner.map<int>(
      3, [](std::size_t job, SweepWorkerContext&) { return int(job) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(SweepRunner, WorkerContextHasPrivateRegistry) {
  SweepRunner runner(2);
  runner.run(8, [&](std::size_t, SweepWorkerContext& ctx) {
    ASSERT_NE(ctx.registry, nullptr);
    ASSERT_LT(ctx.worker, runner.thread_count());
    ctx.registry->counter("test_ctx_jobs_total").inc();
  });
}

TEST(SweepRunner, MergedCountersAndBucketsAreExactForAnyThreadCount) {
  // Each job contributes exact integer increments; the merged totals
  // must match the closed form regardless of which worker ran what.
  constexpr std::size_t kJobs = 64;
  const std::vector<double> bounds{4.0, 16.0, 64.0};
  for (unsigned threads : {1u, 2u, 5u}) {
    SweepRunner runner(threads);
    telemetry::Registry merged;
    runner.run(
        kJobs,
        [&](std::size_t job, SweepWorkerContext& ctx) {
          ctx.registry->counter("test_sum_total").inc(job + 1);
          ctx.registry
              ->histogram("test_job_ids", bounds)
              .observe(static_cast<double>(job));
        },
        &merged);

    const auto samples = merged.snapshot();
    const auto* sum = find_sample(samples, "test_sum_total");
    ASSERT_NE(sum, nullptr) << "threads=" << threads;
    EXPECT_EQ(sum->value, kJobs * (kJobs + 1) / 2.0) << "threads=" << threads;

    const auto* hist = find_sample(samples, "test_job_ids");
    ASSERT_NE(hist, nullptr) << "threads=" << threads;
    EXPECT_EQ(hist->count, kJobs);
    // job ids 0..63 against bounds {4,16,64}: <=4 -> 5, <=16 -> 12,
    // <=64 -> 47, +Inf -> 0.
    EXPECT_EQ(hist->buckets,
              (std::vector<std::uint64_t>{5, 12, 47, 0}))
        << "threads=" << threads;
  }
}

TEST(SweepRunner, MergePublishesRunnerHealthMetrics) {
  SweepRunner runner(2);
  telemetry::Registry merged;
  runner.run(6, [](std::size_t, SweepWorkerContext&) {}, &merged);
  const auto samples = merged.snapshot();

  const auto* busy = find_sample(samples, "probemon_sweep_worker_busy_seconds");
  ASSERT_NE(busy, nullptr);
  EXPECT_GE(busy->value, 0.0);

  const auto* threads = find_sample(samples, "probemon_sweep_threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(threads->value, 2.0);

  const auto* jobs = find_sample(samples, "probemon_sweep_jobs_total");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->value, 6.0);
  EXPECT_EQ(runner.jobs_completed(), 6u);
}

TEST(SweepRunner, LowestNumberedJobExceptionWinsDeterministically) {
  for (unsigned threads : {1u, 3u}) {
    SweepRunner runner(threads);
    try {
      runner.run(16, [](std::size_t job, SweepWorkerContext&) {
        if (job == 11) throw std::runtime_error("job 11 failed");
        if (job == 5) throw std::runtime_error("job 5 failed");
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 5 failed") << "threads=" << threads;
    }
  }
}

TEST(SweepRunner, EmptyJobThrows) {
  SweepRunner runner(1);
  EXPECT_THROW(runner.run(1, SweepRunner::Job{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Experiment batches: the protocol simulations themselves must come back
// bit-identical across thread counts and across scheduler backends.

struct ExperimentDigest {
  double fairness = 0.0;
  double load_mean = 0.0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_received = 0;
  std::uint64_t executed = 0;
  std::uint64_t violations = 0;
};

bool operator==(const ExperimentDigest& a, const ExperimentDigest& b) {
  // Exact (bit-level) comparison on the doubles is intentional: the
  // contract is byte-identical results, not approximately equal ones.
  return a.fairness == b.fairness && a.load_mean == b.load_mean &&
         a.probes_sent == b.probes_sent &&
         a.probes_received == b.probes_received && a.executed == b.executed &&
         a.violations == b.violations;
}

std::vector<ExperimentConfig> digest_configs(des::SchedulerBackend backend) {
  std::vector<ExperimentConfig> configs;
  int seed = 0;
  for (Protocol protocol : {Protocol::kSapp, Protocol::kDcpp}) {
    for (std::size_t k : {1u, 3u, 6u}) {
      ExperimentConfig config;
      config.protocol = protocol;
      config.seed = 1000 + static_cast<std::uint64_t>(++seed);
      config.initial_cps = k;
      config.metrics.record_delay_series = false;
      config.metrics.load_window = 10.0;
      config.scheduler.backend = backend;
      configs.push_back(config);
    }
  }
  return configs;
}

std::vector<ExperimentDigest> run_digest_batch(unsigned threads,
                                               des::SchedulerBackend backend) {
  constexpr double kDuration = 300.0;
  SweepRunner runner(threads);
  return run_experiment_batch<ExperimentDigest>(
      runner, digest_configs(backend), kDuration,
      [](Experiment& exp, SweepWorkerContext&) {
        ExperimentDigest d;
        d.fairness = exp.metrics().frequency_fairness();
        d.load_mean =
            exp.metrics().device_load().series().summary(0.0, kDuration).mean();
        d.probes_sent = exp.metrics().total_probes_sent();
        d.probes_received = exp.metrics().total_probes_received();
        d.executed = exp.sim().scheduler().executed_count();
        d.violations = exp.auditor() ? exp.auditor()->total_violations() : 0;
        return d;
      });
}

TEST(SweepDeterminism, BatchResultsIdenticalAcrossThreadCounts) {
  const auto reference = run_digest_batch(1, des::SchedulerBackend::kWheel);
  ASSERT_EQ(reference.size(), 6u);
  for (const ExperimentDigest& d : reference) {
    EXPECT_GT(d.probes_sent, 0u);
    EXPECT_EQ(d.violations, 0u);  // auditor stays clean under the sweep
  }
  for (unsigned threads : {2u, 4u}) {
    const auto got = run_digest_batch(threads, des::SchedulerBackend::kWheel);
    ASSERT_EQ(got.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i] == reference[i])
          << "threads=" << threads << " job=" << i;
    }
  }
}

TEST(SweepDeterminism, WheelAndHeapBackendsAgreeUnderSweep) {
  // The timer wheel is a drop-in replacement for the reference heap:
  // identical (time, seq) execution order means identical simulations.
  const auto wheel = run_digest_batch(2, des::SchedulerBackend::kWheel);
  const auto heap = run_digest_batch(2, des::SchedulerBackend::kHeap);
  ASSERT_EQ(wheel.size(), heap.size());
  for (std::size_t i = 0; i < wheel.size(); ++i) {
    EXPECT_TRUE(wheel[i] == heap[i]) << "job=" << i;
  }
}

TEST(SweepDeterminism, AuditorCleanAtOneTwoAndManyThreads) {
  for (unsigned threads : {1u, 2u, 4u}) {
    const auto digests = run_digest_batch(threads, des::SchedulerBackend::kWheel);
    for (std::size_t i = 0; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i].violations, 0u)
          << "threads=" << threads << " job=" << i;
    }
  }
}

}  // namespace
}  // namespace probemon::scenario
