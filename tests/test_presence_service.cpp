// Tests for the PresenceService facade over the threaded runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"

namespace probemon::runtime {
namespace {

using namespace std::chrono_literals;

struct Fixture {
  InProcTransport transport;
  core::DcppDeviceConfig device_config;
  core::DcppCpConfig cp_config;

  Fixture() : transport(fast_net()) {
    device_config.delta_min = 0.005;
    device_config.d_min = 0.02;
    cp_config.timeouts.tof = 0.020;
    cp_config.timeouts.tos = 0.015;
  }

  static InProcTransportConfig fast_net() {
    InProcTransportConfig config;
    config.delay_min = 0.0001;
    config.delay_max = 0.0005;
    return config;
  }
};

TEST(PresenceService, WatchedDeviceBecomesPresent) {
  Fixture f;
  RtDcppDevice device(f.transport, f.device_config);
  PresenceService service(f.transport);
  EXPECT_EQ(service.presence(device.id()), Presence::kUnknown);
  service.watch_dcpp(device.id(), f.cp_config);
  EXPECT_EQ(service.watch_count(), 1u);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!service.present(device.id()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(service.present(device.id()));
}

TEST(PresenceService, CrashTransitionsToAbsentWithEvent) {
  Fixture f;
  RtDcppDevice device(f.transport, f.device_config);
  PresenceService service(f.transport);
  std::atomic<int> present_events{0}, absent_events{0};
  service.subscribe([&](const PresenceEvent& event) {
    if (event.state == Presence::kPresent) ++present_events;
    if (event.state == Presence::kAbsent) ++absent_events;
  });
  service.watch_dcpp(device.id(), f.cp_config);
  std::this_thread::sleep_for(150ms);
  EXPECT_EQ(present_events, 1);  // transition fires once, not per cycle
  device.go_silent();
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (absent_events == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(absent_events, 1);
  EXPECT_EQ(service.presence(device.id()), Presence::kAbsent);
}

TEST(PresenceService, WatchIsIdempotentAndUnwatchForgets) {
  Fixture f;
  RtDcppDevice device(f.transport, f.device_config);
  PresenceService service(f.transport);
  service.watch_dcpp(device.id(), f.cp_config);
  service.watch_dcpp(device.id(), f.cp_config);
  EXPECT_EQ(service.watch_count(), 1u);
  service.unwatch(device.id());
  EXPECT_EQ(service.watch_count(), 0u);
  EXPECT_EQ(service.presence(device.id()), Presence::kUnknown);
  service.unwatch(device.id());  // no-op
}

TEST(PresenceService, WatchesManyDevicesIndependently) {
  Fixture f;
  std::vector<std::unique_ptr<RtDcppDevice>> devices;
  for (int i = 0; i < 5; ++i) {
    devices.push_back(
        std::make_unique<RtDcppDevice>(f.transport, f.device_config));
  }
  PresenceService service(f.transport);
  for (const auto& d : devices) service.watch_dcpp(d->id(), f.cp_config);
  EXPECT_EQ(service.watch_count(), 5u);
  std::this_thread::sleep_for(150ms);
  devices[2]->go_silent();
  std::this_thread::sleep_for(400ms);
  std::size_t present = 0, absent = 0;
  for (const auto& entry : service.snapshot()) {
    if (entry.state == Presence::kPresent) ++present;
    if (entry.state == Presence::kAbsent) ++absent;
  }
  EXPECT_EQ(present, 4u);
  EXPECT_EQ(absent, 1u);
}

TEST(PresenceService, SappWatchWorksToo) {
  Fixture f;
  RtSappDevice device(f.transport, core::SappDeviceConfig{});
  PresenceService service(f.transport);
  core::SappCpConfig config;
  config.timeouts = f.cp_config.timeouts;
  config.initial_delay = 0.05;
  config.delta_min = 0.02;
  service.watch_sapp(device.id(), config);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!service.present(device.id()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(service.present(device.id()));
  EXPECT_GT(service.stats().cycles_succeeded, 0u);
}

TEST(PresenceService, UnsubscribeStopsEvents) {
  Fixture f;
  RtDcppDevice device(f.transport, f.device_config);
  PresenceService service(f.transport);
  std::atomic<int> events{0};
  const auto token =
      service.subscribe([&](const PresenceEvent&) { ++events; });
  service.unsubscribe(token);
  service.watch_dcpp(device.id(), f.cp_config);
  std::this_thread::sleep_for(150ms);
  EXPECT_EQ(events, 0);
}

TEST(PresenceService, StatsAggregateAcrossWatches) {
  Fixture f;
  RtDcppDevice a(f.transport, f.device_config);
  RtDcppDevice b(f.transport, f.device_config);
  PresenceService service(f.transport);
  service.watch_dcpp(a.id(), f.cp_config);
  service.watch_dcpp(b.id(), f.cp_config);
  std::this_thread::sleep_for(250ms);
  const auto stats = service.stats();
  EXPECT_GT(stats.probes_sent, 10u);
  EXPECT_GT(stats.cycles_succeeded, 10u);
  EXPECT_EQ(stats.cycles_failed, 0u);
}

TEST(PresenceService, SnapshotWatchesReportsLiveCycleState) {
  Fixture f;
  RtDcppDevice a(f.transport, f.device_config);
  RtDcppDevice b(f.transport, f.device_config);
  PresenceService service(f.transport);
  EXPECT_TRUE(service.snapshotWatches().empty());
  service.watch_dcpp(a.id(), f.cp_config);
  service.watch_dcpp(b.id(), f.cp_config);
  std::this_thread::sleep_for(250ms);

  auto watches = service.snapshotWatches();
  ASSERT_EQ(watches.size(), 2u);
  // Sorted by device id for stable display.
  EXPECT_LT(watches[0].device, watches[1].device);
  for (const auto& w : watches) {
    EXPECT_EQ(w.state, Presence::kPresent);
    EXPECT_GT(w.probes_sent, 0u);
    EXPECT_GT(w.cycles_succeeded, 0u);
    EXPECT_EQ(w.cycles_failed, 0u);
    EXPECT_GT(w.last_rtt, 0.0);           // replies carry a real latency
    EXPECT_EQ(w.consecutive_failures, 0u);  // no loss on the inproc net
    EXPECT_GT(w.next_probe_due, 0.0);
  }

  // Kill one device: its row flips to absent with the failed cycle's
  // attempt count; the other keeps running.
  b.go_silent();
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (service.presence(b.id()) != Presence::kAbsent &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(service.presence(b.id()), Presence::kAbsent);
  watches = service.snapshotWatches();
  const auto& dead =
      watches[0].device == b.id() ? watches[0] : watches[1];
  EXPECT_EQ(dead.state, Presence::kAbsent);
  EXPECT_GT(dead.cycles_failed, 0u);
  // max_retransmissions=3 default: the failed cycle sent 4 probes.
  EXPECT_EQ(dead.consecutive_failures, 4u);
  EXPECT_EQ(dead.next_probe_due, 0.0);  // probing stopped
}

TEST(PresenceService, DestructorJoinsCleanly) {
  Fixture f;
  RtDcppDevice device(f.transport, f.device_config);
  {
    PresenceService service(f.transport);
    service.watch_dcpp(device.id(), f.cp_config);
    std::this_thread::sleep_for(50ms);
    // service destroyed while CPs are mid-flight: must not hang or race.
  }
  SUCCEED();
}

}  // namespace
}  // namespace probemon::runtime
