// Tests for util::Distribution implementations: parameter validation,
// sample-moment consistency (law of large numbers checks against the
// analytic mean/variance), and shape properties.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/distributions.hpp"

namespace probemon::util {
namespace {

constexpr int kSamples = 200000;

struct MomentCase {
  const char* name;
  DistributionPtr dist;
  double mean_tol;     // absolute tolerance on the sample mean
  double var_rel_tol;  // relative tolerance on the sample variance
};

class DistributionMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(DistributionMoments, SampleMomentsMatchAnalytic) {
  const auto& param = GetParam();
  Rng rng(fnv1a64(param.name));
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = param.dist->sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum2 / kSamples - mean * mean;
  EXPECT_NEAR(mean, param.dist->mean(), param.mean_tol) << param.name;
  EXPECT_NEAR(var, param.dist->variance(),
              param.var_rel_tol * param.dist->variance() + 1e-12)
      << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMoments,
    ::testing::Values(
        MomentCase{"constant", make_constant(3.5), 1e-12, 1e-12},
        MomentCase{"uniform", make_uniform(-1.0, 5.0), 0.02, 0.05},
        MomentCase{"exponential", make_exponential(0.05), 0.3, 0.05},
        MomentCase{"normal", make_normal(10.0, 2.0), 0.03, 0.05},
        MomentCase{"lognormal", make_lognormal(0.0, 0.5), 0.02, 0.10},
        MomentCase{"pareto", make_pareto(1.0, 4.0), 0.02, 0.25},
        MomentCase{"weibull", make_weibull(2.0, 3.0), 0.02, 0.05},
        MomentCase{"discrete_uniform", make_discrete_uniform(1, 60), 0.1,
                   0.05},
        MomentCase{"mixture",
                   make_mixture({{1.0, make_uniform(0.0, 1.0)},
                                 {2.0, make_uniform(10.0, 12.0)}}),
                   0.05, 0.05}),
    [](const ::testing::TestParamInfo<MomentCase>& param_info) {
      return param_info.param.name;
    });

TEST(Distributions, ConstantAlwaysReturnsValue) {
  Rng rng(1);
  Constant c(42.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(c.sample(rng), 42.0);
}

TEST(Distributions, UniformStaysInRange) {
  Rng rng(2);
  Uniform u(3.0, 7.0);
  for (int i = 0; i < 10000; ++i) {
    const double x = u.sample(rng);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(Distributions, ExponentialIsPositive) {
  Rng rng(3);
  Exponential e(2.0);
  for (int i = 0; i < 10000; ++i) ASSERT_GT(e.sample(rng), 0.0);
}

TEST(Distributions, ExponentialMemorylessTail) {
  // P(X > 2m) should be about P(X > m)^2.
  Rng rng(4);
  Exponential e(1.0);
  int over_1 = 0, over_2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = e.sample(rng);
    if (x > 1.0) ++over_1;
    if (x > 2.0) ++over_2;
  }
  const double p1 = static_cast<double>(over_1) / n;
  const double p2 = static_cast<double>(over_2) / n;
  EXPECT_NEAR(p2, p1 * p1, 0.01);
}

TEST(Distributions, ParetoRespectsMinimum) {
  Rng rng(5);
  Pareto p(2.0, 3.0);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(p.sample(rng), 2.0);
}

TEST(Distributions, ParetoInfiniteMomentsReported) {
  EXPECT_TRUE(std::isinf(Pareto(1.0, 0.5).mean()));
  EXPECT_TRUE(std::isinf(Pareto(1.0, 1.5).variance()));
}

TEST(Distributions, WeibullShapeOneIsExponential) {
  // Weibull(k=1, lambda) == Exponential(1/lambda).
  Weibull w(1.0, 2.0);
  EXPECT_NEAR(w.mean(), 2.0, 1e-9);
  EXPECT_NEAR(w.variance(), 4.0, 1e-9);
}

TEST(Distributions, DiscreteUniformCoversSupport) {
  Rng rng(6);
  DiscreteUniform d(-2, 2);
  std::set<double> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(d.sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Distributions, MixtureRespectsWeights) {
  Rng rng(7);
  // 1:3 weighting of two point masses.
  Mixture m({{1.0, make_constant(0.0)}, {3.0, make_constant(1.0)}});
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += m.sample(rng);
  EXPECT_NEAR(sum / n, 0.75, 0.01);
}

TEST(Distributions, ValidationRejectsBadParameters) {
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(Normal(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(DiscreteUniform(5, 2), std::invalid_argument);
  EXPECT_THROW(Mixture({}), std::invalid_argument);
  EXPECT_THROW(Mixture({{0.0, make_constant(1.0)}}), std::invalid_argument);
  EXPECT_THROW(Mixture({{1.0, nullptr}}), std::invalid_argument);
}

TEST(Distributions, DescribeMentionsParameters) {
  EXPECT_NE(make_exponential(0.05)->describe().find("0.05"),
            std::string::npos);
  EXPECT_NE(make_uniform(1.0, 2.0)->describe().find("1"), std::string::npos);
  EXPECT_NE(make_mixture({{1.0, make_constant(7.0)}})->describe().find("7"),
            std::string::npos);
}

TEST(Distributions, SamplingIsDeterministicPerSeed) {
  Exponential e(1.0);
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(e.sample(a), e.sample(b));
}

}  // namespace
}  // namespace probemon::util
