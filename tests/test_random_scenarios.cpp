// Randomized scenario sweep: generate varied configurations (protocol,
// population, churn, loss, outages, departures) from a seed and check
// global invariants that must hold in EVERY run. This is the fuzzing
// net under the hand-written suites.
#include <gtest/gtest.h>

#include <memory>

#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"
#include "util/rng.hpp"

namespace probemon {
namespace {

class RandomScenario : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScenario, GlobalInvariantsHold) {
  util::Rng gen(GetParam());

  scenario::ExperimentConfig config;
  const auto protocol_pick = gen.uniform_u64(0, 2);
  config.protocol = protocol_pick == 0   ? scenario::Protocol::kSapp
                    : protocol_pick == 1 ? scenario::Protocol::kDcpp
                                         : scenario::Protocol::kFixedRate;
  config.seed = gen.next_u64();
  config.initial_cps = static_cast<std::size_t>(gen.uniform_u64(1, 25));
  config.join_jitter_max = gen.uniform(0.0, 2.0);
  config.dissemination = gen.bernoulli(0.3);
  config.metrics.record_delay_series = false;
  if (gen.bernoulli(0.4)) {
    const double p = gen.uniform(0.0, 0.1);
    config.loss_factory = [p] { return net::make_bernoulli_loss(p); };
  }
  // Keep the fixed-rate baseline's population small enough that the
  // serial device stays stable (its collapse at high k is measured
  // deliberately in bench A12, not fuzzed here).
  if (config.protocol == scenario::Protocol::kFixedRate) {
    config.initial_cps = std::min<std::size_t>(config.initial_cps, 8);
    config.fixed_cp.continue_after_absence = true;
  }

  scenario::Experiment exp(config);

  const double duration = gen.uniform(150.0, 400.0);
  // Optional churn.
  if (gen.bernoulli(0.5)) {
    exp.install_churn(std::make_unique<scenario::DynamicUniformChurn>(
        1, static_cast<std::size_t>(gen.uniform_u64(5, 30)),
        gen.uniform(0.02, 0.3)));
  }
  // Optional transient outage (shorter than the run).
  const bool had_outage = gen.bernoulli(0.4);
  if (had_outage) {
    const double t0 = gen.uniform(50.0, duration * 0.5);
    exp.network().schedule_outage(t0, t0 + gen.uniform(0.01, 2.0));
  }
  // Optional device departure near the end.
  const bool departs = gen.bernoulli(0.5);
  const double depart_at = duration - 30.0;
  if (departs) exp.schedule_device_departure(depart_at, gen.bernoulli(0.3));

  exp.run_until(duration);
  exp.finish();

  // --- Invariant 1: message conservation at quiescence. ---
  // Drain any still-scheduled deliveries/timers bounded by a horizon.
  const auto& c = exp.network().counters();
  EXPECT_EQ(c.sent, c.delivered + c.dropped_loss + c.dropped_overflow +
                        c.dropped_unknown + c.dropped_outage +
                        exp.network().in_flight())
      << "message conservation violated";

  // --- Invariant 2: the device never over-commits (DCPP only). ---
  if (config.protocol == scenario::Protocol::kDcpp) {
    const double load =
        static_cast<double>(exp.metrics().total_probes_received()) /
        duration;
    // Mean load can exceed L_nom only through join-burst first probes
    // and retransmissions; give them 30 % headroom.
    EXPECT_LE(load, exp.config().dcpp_device.l_nom() * 1.3);
  }

  // --- Invariant 3: departure is eventually detected by someone. ---
  // Skipped when an outage was injected: CPs that (correctly, by the
  // protocol's rules) declared absence during the blackout stop probing
  // and will not witness the real departure.
  if (departs && !had_outage) {
    bool someone_knows = false;
    for (const auto& [id, m] : exp.metrics().per_cp()) {
      if ((m.declared_absent_at && *m.declared_absent_at >= depart_at) ||
          (m.learned_absent_at && *m.learned_absent_at >= depart_at)) {
        someone_knows = true;
        break;
      }
    }
    if (exp.active_cp_count() > 0) {
      EXPECT_TRUE(someone_knows) << "silent departure went unnoticed";
    }
  }

  // --- Invariant 4: per-CP accounting is consistent. ---
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    EXPECT_GE(m.probes_sent, m.cycles_succeeded);
    if (m.declared_absent_at) {
      EXPECT_GE(*m.declared_absent_at, 0.0);
      EXPECT_LE(*m.declared_absent_at, duration);
    }
  }

  // --- Invariant 5: the buffer respected its capacity. ---
  EXPECT_LE(exp.network().max_buffer_occupancy(),
            static_cast<double>(exp.config().network.buffer_capacity));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomScenario,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace probemon
