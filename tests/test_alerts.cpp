// AlertEngine: rule lifecycle (inactive -> pending -> firing ->
// resolved), for_s hysteresis, NaN semantics, condition rules,
// probemon_alerts_firing export, the shipped default ruleset, and a
// deterministic DES timeline — a device departure drives the
// detection_latency_p99 rule through its whole state machine with
// byte-identical /alerts JSON across reruns.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "scenario/experiment.hpp"
#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/alerts/default_rules.hpp"
#include "telemetry/history/history.hpp"
#include "telemetry/observer_adapter.hpp"
#include "telemetry/registry.hpp"

namespace probemon {
namespace {

using telemetry::AlertEngine;
using telemetry::AlertOp;
using telemetry::AlertRule;
using telemetry::AlertState;
using telemetry::Labels;
using telemetry::Registry;
using telemetry::TimeSeriesHistory;

AlertRule gauge_rule(const std::string& name, double threshold,
                     double for_s = 0.0) {
  AlertRule rule;
  rule.name = name;
  rule.expr = "probemon_load";
  rule.op = AlertOp::kGt;
  rule.threshold = threshold;
  rule.for_s = for_s;
  return rule;
}

/// One evaluation step: set the gauge, sample, evaluate, return the
/// single rule instance's state.
AlertState step(telemetry::Gauge& gauge, TimeSeriesHistory& history,
                AlertEngine& engine, double value, double t) {
  gauge.set(value);
  history.sample(t);
  engine.evaluate(t);
  return engine.snapshot().at(0).state;
}

TEST(AlertEngine, FiresImmediatelyWithoutHysteresis) {
  Registry reg;
  auto& gauge = reg.gauge("probemon_load");
  TimeSeriesHistory history(reg);
  history.track("probemon_load");
  AlertEngine engine(&history);
  engine.add_rule(gauge_rule("load_high", 10.0));

  EXPECT_EQ(engine.snapshot().at(0).state, AlertState::kInactive);
  EXPECT_EQ(step(gauge, history, engine, 5.0, 1.0), AlertState::kInactive);
  EXPECT_EQ(step(gauge, history, engine, 20.0, 2.0), AlertState::kFiring);
  EXPECT_EQ(engine.snapshot().at(0).fire_count, 1u);
  EXPECT_EQ(engine.snapshot().at(0).firing_since, 2.0);
  // Clearing resolves; resolved is sticky while the value stays good.
  EXPECT_EQ(step(gauge, history, engine, 5.0, 3.0), AlertState::kResolved);
  EXPECT_EQ(step(gauge, history, engine, 5.0, 4.0), AlertState::kResolved);
  // A re-breach fires again.
  EXPECT_EQ(step(gauge, history, engine, 30.0, 5.0), AlertState::kFiring);
  EXPECT_EQ(engine.snapshot().at(0).fire_count, 2u);
}

TEST(AlertEngine, ForDurationHoldsAlertsInPending) {
  Registry reg;
  auto& gauge = reg.gauge("probemon_load");
  TimeSeriesHistory history(reg);
  history.track("probemon_load");
  AlertEngine engine(&history);
  engine.add_rule(gauge_rule("load_high", 10.0, /*for_s=*/2.0));

  EXPECT_EQ(step(gauge, history, engine, 20.0, 1.0), AlertState::kPending);
  EXPECT_EQ(engine.snapshot().at(0).pending_since, 1.0);
  // A dip before for_s elapses cancels the alert entirely.
  EXPECT_EQ(step(gauge, history, engine, 5.0, 2.0), AlertState::kInactive);

  EXPECT_EQ(step(gauge, history, engine, 20.0, 3.0), AlertState::kPending);
  EXPECT_EQ(step(gauge, history, engine, 20.0, 4.0), AlertState::kPending);
  EXPECT_EQ(step(gauge, history, engine, 20.0, 5.0), AlertState::kFiring);
  const auto status = engine.snapshot().at(0);
  EXPECT_EQ(status.pending_since, 3.0);
  EXPECT_EQ(status.firing_since, 5.0);
  EXPECT_EQ(step(gauge, history, engine, 5.0, 6.0), AlertState::kResolved);
  EXPECT_EQ(engine.snapshot().at(0).resolved_at, 6.0);
}

TEST(AlertEngine, NanNeverBreachesAndResolvesFiringAlerts) {
  Registry reg;
  auto& gauge = reg.gauge("probemon_load");
  TimeSeriesHistory history(reg);
  history.track("probemon_load");
  AlertEngine engine(&history, /*default_range_s=*/60.0);
  AlertRule rule = gauge_rule("load_high", 10.0);
  rule.expr = "avg(probemon_load[2])";
  engine.add_rule(rule);

  // No samples at all: the expression is NaN, the rule stays inactive.
  engine.evaluate(1.0);
  EXPECT_EQ(engine.snapshot().at(0).state, AlertState::kInactive);

  // One in-window sample is enough for avg: the rule fires right away.
  EXPECT_EQ(step(gauge, history, engine, 20.0, 2.0), AlertState::kFiring);
  EXPECT_EQ(step(gauge, history, engine, 20.0, 3.0), AlertState::kFiring);
  // The series vanishes (agent gone) but sampling continues: the 2 s
  // window slides past its last point -> NaN -> firing resolves
  // instead of latching forever on stale data.
  reg.remove("probemon_load");
  history.sample(10.0);
  engine.evaluate(10.0);
  EXPECT_EQ(engine.snapshot().at(0).state, AlertState::kResolved);
}

TEST(AlertEngine, ComparisonOperatorsAndRuleValidation) {
  Registry reg;
  auto& gauge = reg.gauge("probemon_load");
  TimeSeriesHistory history(reg);
  history.track("probemon_load");
  AlertEngine engine(&history);
  AlertRule low = gauge_rule("load_low", 3.0);
  low.op = AlertOp::kLt;
  engine.add_rule(low);
  EXPECT_EQ(step(gauge, history, engine, 1.0, 1.0), AlertState::kFiring);
  EXPECT_EQ(step(gauge, history, engine, 3.0, 2.0), AlertState::kResolved);

  EXPECT_THROW(engine.add_rule(gauge_rule("load_low", 1.0)),
               std::logic_error);  // duplicate name
  AlertRule bad = gauge_rule("bad", 1.0);
  bad.expr = "rate(";
  EXPECT_THROW(engine.add_rule(bad), std::invalid_argument);
  EXPECT_EQ(engine.rule_count(), 1u);
}

TEST(AlertEngine, ExportsFiringGaugePerInstance) {
  Registry reg;
  auto& gauge = reg.gauge("probemon_load");
  TimeSeriesHistory history(reg);
  history.track("probemon_load");
  AlertEngine engine(&history);
  AlertRule rule = gauge_rule("load_high", 10.0);
  rule.labels = {{"severity", "page"}};
  engine.add_rule(rule);
  engine.bind_registry(reg);

  step(gauge, history, engine, 20.0, 1.0);
  const Labels want{{"rule", "load_high"}, {"severity", "page"}};
  EXPECT_EQ(reg.gauge("probemon_alerts_firing", "", want).value(), 1.0);
  step(gauge, history, engine, 1.0, 2.0);
  EXPECT_EQ(reg.gauge("probemon_alerts_firing", "", want).value(), 0.0);
}

TEST(AlertEngine, ConditionRulesAreDrivenExternally) {
  AlertEngine engine;  // no history needed
  AlertRule rule;
  rule.name = "agent_absent";
  rule.for_s = 0.0;
  engine.add_condition_rule(rule);

  EXPECT_THROW(engine.set_condition("nope", {}, true, 1.0, 1.0),
               std::logic_error);

  engine.set_condition("agent_absent", {{"agent", "node-1"}}, false, 0.1, 1.0);
  engine.set_condition("agent_absent", {{"agent", "node-2"}}, true, 9.0, 1.0);
  auto statuses = engine.snapshot();
  ASSERT_EQ(statuses.size(), 2u);  // sorted by instance labels
  EXPECT_EQ(statuses[0].labels,
            (Labels{{"rule", "agent_absent"}, {"agent", "node-1"}}));
  EXPECT_EQ(statuses[0].state, AlertState::kInactive);
  EXPECT_EQ(statuses[1].state, AlertState::kFiring);
  EXPECT_EQ(statuses[1].value, 9.0);

  // The agent comes back: firing -> resolved; forgetting it drops the
  // instance entirely.
  engine.set_condition("agent_absent", {{"agent", "node-2"}}, false, 0.0, 2.0);
  EXPECT_EQ(engine.snapshot().at(1).state, AlertState::kResolved);
  EXPECT_TRUE(engine.remove_condition("agent_absent", {{"agent", "node-2"}}));
  EXPECT_FALSE(engine.remove_condition("agent_absent", {{"agent", "node-2"}}));
  EXPECT_EQ(engine.snapshot().size(), 1u);
}

TEST(AlertEngine, JsonIsFilterableByState) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "agent_absent";
  rule.summary = "agent stopped pushing";
  engine.add_condition_rule(rule);
  engine.set_condition("agent_absent", {{"agent", "a"}}, true, 3.5, 2.0);
  engine.set_condition("agent_absent", {{"agent", "b"}}, false, 0.5, 2.0);

  const auto all = telemetry::alerts_to_json(engine);
  EXPECT_NE(all.find("\"as_of\":2"), std::string::npos) << all;
  EXPECT_NE(all.find("\"rule\":\"agent_absent\""), std::string::npos);
  EXPECT_NE(all.find("\"state\":\"inactive\""), std::string::npos);

  const auto firing = telemetry::alerts_to_json(engine, "firing");
  EXPECT_NE(firing.find("\"agent\":\"a\""), std::string::npos) << firing;
  EXPECT_EQ(firing.find("\"agent\":\"b\""), std::string::npos) << firing;
  EXPECT_NE(firing.find("\"summary\":\"agent stopped pushing\""),
            std::string::npos);
}

TEST(DefaultRules, EncodeThePaperBudgets) {
  const auto rules = telemetry::default_presence_rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].name, "detection_latency_p99");
  EXPECT_EQ(rules[1].name, "false_alarm_rate");
  EXPECT_EQ(rules[2].name, "device_load");
  // device_load's threshold is the paper bound beta * l_nom.
  EXPECT_DOUBLE_EQ(rules[2].threshold, 1.5 * 10.0);

  // Every rule must parse, and every series it reads must be in the
  // track list.
  const auto series = telemetry::default_rule_series();
  ASSERT_EQ(series.size(), 3u);
  Registry reg;
  TimeSeriesHistory history(reg);
  AlertEngine engine(&history);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    engine.add_rule(rules[i]);
    EXPECT_NE(rules[i].expr.find(series[i].first), std::string::npos)
        << rules[i].expr;
  }
  EXPECT_EQ(engine.rule_count(), 3u);
}

/// Run one DES experiment where the device departs mid-run, with the
/// default detection-latency rule evaluated from simulation time, and
/// return {observed state sequence, final /alerts JSON}.
std::pair<std::vector<AlertState>, std::string> des_alert_timeline() {
  scenario::ExperimentConfig config;
  config.seed = 7;
  config.initial_cps = 5;
  scenario::Experiment exp(config);

  Registry registry;
  telemetry::ObserverAdapter adapter(registry);
  exp.add_observer(adapter);

  TimeSeriesHistory history(registry,
                            {.sample_period_s = 1.0, .slots = 128});
  telemetry::DefaultRuleParams params;
  // Any real detection latency breaches a 1 ms budget, and a short
  // window lets the rule resolve once detections age out of it.
  params.detection_latency_budget_s = 0.001;
  params.detection_latency_window_s = 15.0;
  params.detection_latency_for_s = 2.0;
  for (const auto& [series, labels] : default_rule_series(params)) {
    history.track(series, labels);
  }
  AlertEngine engine(&history);
  for (const auto& rule : default_presence_rules(params)) {
    engine.add_rule(rule);
  }

  const double departure_t = 20.0;
  exp.schedule_device_departure(departure_t);
  adapter.set_device_departure_time(departure_t);

  std::vector<AlertState> states;
  auto sampler = exp.sim().every(1.0, [&](des::Time t) {
    history.sample(t);
    engine.evaluate(t);
    for (const auto& status : engine.snapshot()) {
      if (status.rule == "detection_latency_p99") states.push_back(status.state);
    }
  });
  exp.run_until(80.0);
  exp.finish();
  return {states, telemetry::alerts_to_json(engine)};
}

TEST(AlertEngine, DesDepartureDrivesTheFullStateMachine) {
  const auto [states, json] = des_alert_timeline();

  // The observed sequence must walk inactive -> pending -> firing ->
  // resolved in order (SAPP CPs declare absence within seconds of the
  // t=20 departure; the 15 s window then empties out).
  auto first = [&](AlertState want) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i] == want) return static_cast<std::ptrdiff_t>(i);
    }
    return static_cast<std::ptrdiff_t>(-1);
  };
  const auto pending = first(AlertState::kPending);
  const auto firing = first(AlertState::kFiring);
  const auto resolved = first(AlertState::kResolved);
  ASSERT_GT(pending, 0) << "rule never went pending";
  ASSERT_GT(firing, pending) << "rule never fired";
  ASSERT_GT(resolved, firing) << "rule never resolved";
  EXPECT_EQ(states[0], AlertState::kInactive);
  EXPECT_EQ(states.back(), AlertState::kResolved);

  EXPECT_NE(json.find("\"rule\":\"detection_latency_p99\""),
            std::string::npos);

  // Rerunning the identical experiment must reproduce the exact bytes:
  // sim-time-driven sampling makes the alert timeline deterministic.
  const auto rerun = des_alert_timeline();
  EXPECT_EQ(rerun.first, states);
  EXPECT_EQ(rerun.second, json);
}

}  // namespace
}  // namespace probemon
