// Integration tests: scaled-down versions of the paper's experiments
// with assertions on the qualitative shape each one must show. These are
// the regression net for the bench/ reproductions.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"

namespace probemon {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Protocol;

TEST(PaperShape, SappIsUnfairAtTwentyCps) {
  // Mini T1: the frequency distribution must be grossly unfair while the
  // device load stays near L_nom and the buffer stays near-empty.
  ExperimentConfig config;
  config.protocol = Protocol::kSapp;
  config.seed = 42;
  config.initial_cps = 20;
  config.metrics.warmup = 2000.0;
  config.metrics.record_delay_series = false;
  Experiment exp(config);
  exp.run_until(8000.0);
  exp.finish();

  EXPECT_LT(exp.metrics().frequency_fairness(), 0.5);
  const auto delays = exp.metrics().mean_delays();
  const auto starved = std::count_if(delays.begin(), delays.end(),
                                     [](double d) { return d > 8.0; });
  EXPECT_GE(starved, 10);
  const auto load =
      exp.metrics().device_load().series().summary(2000.0, 8000.0);
  EXPECT_GT(load.mean(), 5.0);
  EXPECT_LT(load.mean(), 15.0);
  EXPECT_LT(exp.network().mean_buffer_occupancy(exp.sim().now()), 0.1);
}

TEST(PaperShape, SappStarvedCpsDoNotRecover) {
  // Fig 2's key claim: once starved, a CP stays starved. Check that any
  // CP pinned at delta_max at t = 4000 is still pinned at the end.
  ExperimentConfig config;
  config.protocol = Protocol::kSapp;
  config.seed = 3;
  config.initial_cps = 3;
  Experiment exp(config);
  exp.run_until(4000.0);
  std::vector<net::NodeId> pinned;
  for (net::NodeId id : exp.initial_cp_ids()) {
    const auto* cp =
        dynamic_cast<const core::SappControlPoint*>(exp.cp(id));
    ASSERT_NE(cp, nullptr);
    if (cp->delta() >= cp->config().delta_max * 0.99) pinned.push_back(id);
  }
  ASSERT_FALSE(pinned.empty()) << "scenario should starve someone";
  exp.run_until(10000.0);
  for (net::NodeId id : pinned) {
    const auto* cp =
        dynamic_cast<const core::SappControlPoint*>(exp.cp(id));
    EXPECT_GE(cp->delta(), cp->config().delta_max * 0.99)
        << "starved CP recovered, contradicting the paper";
  }
  exp.finish();
}

TEST(PaperShape, DcppIsFairAndCapped) {
  // Mini section-5 check across population sizes.
  for (std::size_t k : {2u, 5u, 20u}) {
    ExperimentConfig config;
    config.protocol = Protocol::kDcpp;
    config.seed = 100 + k;
    config.initial_cps = k;
    config.metrics.warmup = 50.0;
    config.metrics.record_delay_series = false;
    Experiment exp(config);
    exp.run_until(400.0);
    exp.finish();
    EXPECT_GT(exp.metrics().frequency_fairness(), 0.99) << "k=" << k;
    const auto load =
        exp.metrics().device_load().series().summary(50.0, 400.0);
    const double expected =
        std::min(10.0, 2.0 * static_cast<double>(k));
    EXPECT_NEAR(load.mean(), expected, 0.6) << "k=" << k;
  }
}

TEST(PaperShape, DcppAbsorbsChurnWithBoundedMeanLoad) {
  // Mini Fig 5: dynamic uniform churn; mean near L_nom, every CP's load
  // bounded; spikes decay.
  ExperimentConfig config;
  config.protocol = Protocol::kDcpp;
  config.seed = 55;
  config.initial_cps = 20;
  config.join_jitter_max = 0.0;
  config.metrics.record_delay_series = false;
  Experiment exp(config);
  exp.install_churn(
      std::make_unique<scenario::DynamicUniformChurn>(1, 60, 0.05));
  exp.run_until(1000.0);
  exp.finish();
  const auto load =
      exp.metrics().device_load().series().summary(100.0, 1000.0);
  EXPECT_NEAR(load.mean(), 10.0, 1.5);
  EXPECT_LT(load.stddev(), 10.0);
}

TEST(PaperShape, DcppBeatsSappOnFairnessHeadToHead) {
  auto run = [](Protocol protocol) {
    ExperimentConfig config;
    config.protocol = protocol;
    config.seed = 9;
    config.initial_cps = 10;
    config.metrics.warmup = 500.0;
    config.metrics.record_delay_series = false;
    Experiment exp(config);
    exp.run_until(3000.0);
    exp.finish();
    return exp.metrics().frequency_fairness();
  };
  EXPECT_GT(run(Protocol::kDcpp), run(Protocol::kSapp) + 0.2);
}

TEST(PaperShape, DetectionLatencyOrderOfOneSecondForDcpp) {
  // The intro's requirement: absence detected "in the order of one
  // second".
  ExperimentConfig config;
  config.protocol = Protocol::kDcpp;
  config.seed = 71;
  config.initial_cps = 10;
  config.metrics.record_delay_series = false;
  Experiment exp(config);
  exp.schedule_device_departure(100.0);
  exp.run_until(110.0);
  exp.finish();
  const auto lat = exp.metrics().detection_latencies();
  ASSERT_EQ(lat.size(), 10u);
  for (double l : lat) EXPECT_LE(l, 1.2);
}

TEST(PaperShape, DisseminationSpeedsUpAbsenceKnowledge) {
  // With gossip enabled, most CPs learn of the departure before their
  // own probe cycle would have failed.
  auto run = [](bool dissemination) {
    ExperimentConfig config;
    config.protocol = Protocol::kDcpp;
    config.seed = 13;
    config.initial_cps = 12;
    config.dissemination = dissemination;
    config.dissemination_ttl = 3;
    config.metrics.record_delay_series = false;
    Experiment exp(config);
    exp.schedule_device_departure(60.0);
    exp.run_until(70.0);
    exp.finish();
    double total = 0;
    std::size_t n = 0;
    for (const auto& [id, m] : exp.metrics().per_cp()) {
      double at = 1e18;
      if (m.declared_absent_at) at = *m.declared_absent_at;
      if (m.learned_absent_at) at = std::min(at, *m.learned_absent_at);
      if (at < 1e18) {
        total += at - 60.0;
        ++n;
      }
    }
    return n ? total / static_cast<double>(n) : 1e18;
  };
  const double with = run(true);
  const double without = run(false);
  EXPECT_LT(with, without);
}

TEST(PaperShape, DeviceCpGroupsAreIndependent) {
  // Paper section 3: "We consider only one device since devices and the
  // respective connected CPs in range can be considered as independent
  // from other devices/CPs." Verify on a shared network: two DCPP
  // devices with their own CP groups produce the same loads as two
  // isolated single-device runs.
  des::Simulation sim(77);
  auto network = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  core::EntityArena arena;
  core::DcppDevice device_a(sim, *network, arena, core::DcppDeviceConfig{});
  core::DcppDevice device_b(sim, *network, arena, core::DcppDeviceConfig{});
  std::vector<std::unique_ptr<core::DcppControlPoint>> cps;
  for (int i = 0; i < 8; ++i) {
    cps.push_back(std::make_unique<core::DcppControlPoint>(
        sim, *network, arena, device_a.id(), core::DcppCpConfig{}));
    cps.back()->start(0.1 * i);
  }
  for (int i = 0; i < 3; ++i) {
    cps.push_back(std::make_unique<core::DcppControlPoint>(
        sim, *network, arena, device_b.id(), core::DcppCpConfig{}));
    cps.back()->start(0.1 * i);
  }
  sim.run_until(300.0);
  // Group A (8 CPs, k*f_max = 16 > L_nom): load 10. Group B (3 CPs):
  // load 6. Sharing a network must not couple them.
  const double load_a =
      static_cast<double>(device_a.probes_received()) / 300.0;
  const double load_b =
      static_cast<double>(device_b.probes_received()) / 300.0;
  EXPECT_NEAR(load_a, 10.0, 0.7);
  EXPECT_NEAR(load_b, 6.0, 0.5);
}

TEST(PaperShape, NetworkBufferStaysTiny) {
  // The paper: "network buffer overflow is a seldom phenomenon as the
  // average buffer length is very small (~0.004)".
  ExperimentConfig config;
  config.protocol = Protocol::kSapp;
  config.seed = 42;
  config.initial_cps = 20;
  config.metrics.record_delay_series = false;
  Experiment exp(config);
  exp.run_until(3000.0);
  exp.finish();
  EXPECT_LT(exp.network().mean_buffer_occupancy(exp.sim().now()), 0.05);
  EXPECT_EQ(exp.network().counters().dropped_overflow, 0u);
}

}  // namespace
}  // namespace probemon
