// Tests for the wall-clock runtime: in-process transport semantics and
// the threaded device/CP protocol loops. Timings are kept small so the
// whole file runs in a few seconds of real time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/inproc_transport.hpp"
#include "runtime/rt_control_point.hpp"
#include "runtime/rt_device.hpp"

namespace probemon::runtime {
namespace {

using namespace std::chrono_literals;

InProcTransportConfig fast_net() {
  InProcTransportConfig config;
  config.delay_min = 0.0001;
  config.delay_max = 0.0005;
  config.loss = 0.0;
  return config;
}

core::TimeoutConfig fast_timeouts() {
  core::TimeoutConfig t;
  t.tof = 0.020;
  t.tos = 0.015;
  return t;
}

TEST(InProcTransport, DeliversToHandler) {
  InProcTransport transport(fast_net());
  std::atomic<int> received{0};
  const net::NodeId a = transport.attach([&](const net::Message&) {});
  const net::NodeId b =
      transport.attach([&](const net::Message&) { ++received; });
  net::Message m;
  m.kind = net::MessageKind::kProbe;
  m.from = a;
  m.to = b;
  for (int i = 0; i < 100; ++i) transport.send(m);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (received < 100 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(received, 100);
  EXPECT_EQ(transport.delivered_count(), 100u);
  EXPECT_EQ(transport.sent_count(), 100u);
}

TEST(InProcTransport, UnknownDestinationCountsDropped) {
  InProcTransport transport(fast_net());
  const net::NodeId a = transport.attach([](const net::Message&) {});
  net::Message m;
  m.kind = net::MessageKind::kProbe;
  m.from = a;
  m.to = 9999;
  transport.send(m);
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(transport.dropped_count(), 1u);
}

TEST(InProcTransport, LossDropsStatistically) {
  auto config = fast_net();
  config.loss = 0.5;
  InProcTransport transport(config);
  std::atomic<int> received{0};
  const net::NodeId a = transport.attach([](const net::Message&) {});
  const net::NodeId b =
      transport.attach([&](const net::Message&) { ++received; });
  net::Message m;
  m.kind = net::MessageKind::kProbe;
  m.from = a;
  m.to = b;
  for (int i = 0; i < 2000; ++i) transport.send(m);
  std::this_thread::sleep_for(300ms);
  EXPECT_NEAR(static_cast<double>(received), 1000.0, 150.0);
  EXPECT_EQ(transport.dropped_count() + transport.delivered_count(), 2000u);
}

TEST(InProcTransport, DetachStopsDelivery) {
  InProcTransport transport(fast_net());
  std::atomic<int> received{0};
  const net::NodeId a = transport.attach([](const net::Message&) {});
  const net::NodeId b =
      transport.attach([&](const net::Message&) { ++received; });
  transport.detach(b);
  net::Message m;
  m.kind = net::MessageKind::kProbe;
  m.from = a;
  m.to = b;
  transport.send(m);
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(received, 0);
}

TEST(InProcTransport, ValidatesConfig) {
  InProcTransportConfig bad;
  bad.delay_min = 0.5;
  bad.delay_max = 0.1;
  EXPECT_THROW(InProcTransport{bad}, std::invalid_argument);
  bad = InProcTransportConfig{};
  bad.loss = 1.5;
  EXPECT_THROW(InProcTransport{bad}, std::invalid_argument);
}

TEST(RtDcpp, EndToEndProbingRespectsGrants) {
  InProcTransport transport(fast_net());
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.01;  // 100 probes/s cap
  device_config.d_min = 0.05;      // 20 probes/s per CP
  RtDcppDevice device(transport, device_config);

  core::DcppCpConfig cp_config;
  cp_config.timeouts = fast_timeouts();
  RtDcppControlPoint cp(transport, device.id(), cp_config);
  cp.start();
  std::this_thread::sleep_for(500ms);
  cp.stop();

  // Lone CP probes at ~1/d_min = 20 Hz: expect ~10 cycles in 0.5 s.
  EXPECT_GT(cp.cycles_succeeded(), 5u);
  EXPECT_LT(cp.cycles_succeeded(), 15u);
  EXPECT_TRUE(cp.device_considered_present());
  EXPECT_NEAR(cp.current_delay(), 0.05, 0.02);
}

TEST(RtDcpp, MultipleCpsShareDeviceFairly) {
  InProcTransport transport(fast_net());
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.005;  // 200 probes/s cap
  device_config.d_min = 0.02;
  RtDcppDevice device(transport, device_config);

  core::DcppCpConfig cp_config;
  cp_config.timeouts = fast_timeouts();
  std::vector<std::unique_ptr<RtDcppControlPoint>> cps;
  for (int i = 0; i < 4; ++i) {
    cps.push_back(std::make_unique<RtDcppControlPoint>(
        transport, device.id(), cp_config));
    cps.back()->start();
  }
  std::this_thread::sleep_for(600ms);
  for (auto& cp : cps) cp->stop();

  std::uint64_t min_cycles = UINT64_MAX, max_cycles = 0;
  for (const auto& cp : cps) {
    min_cycles = std::min(min_cycles, cp->cycles_succeeded());
    max_cycles = std::max(max_cycles, cp->cycles_succeeded());
  }
  EXPECT_GT(min_cycles, 5u);
  // Fair sharing: no CP gets more than ~2x another.
  EXPECT_LT(max_cycles, 2 * min_cycles + 5);
}

TEST(RtDcpp, DetectsSilentDevice) {
  InProcTransport transport(fast_net());
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.01;
  device_config.d_min = 0.05;
  RtDcppDevice device(transport, device_config);

  core::DcppCpConfig cp_config;
  cp_config.timeouts = fast_timeouts();
  std::atomic<int> absences{0};
  RtControlPointBase::Callbacks callbacks;
  callbacks.on_absent = [&](net::NodeId, double) { ++absences; };
  RtDcppControlPoint cp(transport, device.id(), cp_config, callbacks);
  cp.start();
  std::this_thread::sleep_for(200ms);
  EXPECT_TRUE(cp.device_considered_present());
  device.go_silent();
  std::this_thread::sleep_for(300ms);
  EXPECT_FALSE(cp.device_considered_present());
  EXPECT_EQ(absences, 1);
  EXPECT_EQ(cp.cycles_failed(), 1u);
}

TEST(RtSapp, ProbeCounterAdvancesAndCpAdapts) {
  InProcTransport transport(fast_net());
  core::SappDeviceConfig device_config;  // Delta = 1e5
  RtSappDevice device(transport, device_config);

  core::SappCpConfig cp_config;
  cp_config.timeouts = fast_timeouts();
  cp_config.delta_min = 0.02;
  cp_config.initial_delay = 0.1;
  RtSappControlPoint cp(transport, device.id(), cp_config);
  cp.start();
  std::this_thread::sleep_for(500ms);
  cp.stop();

  EXPECT_GT(cp.cycles_succeeded(), 2u);
  EXPECT_EQ(device.probe_counter(),
            device.probes_received() * device_config.delta());
  // A lone CP at 10 Hz sees L_exp = 1e5 * 10 = 1e6: inside the band, so
  // the delay must stay within [delta_min, delta_max].
  EXPECT_GE(cp.current_delay(), cp_config.delta_min);
  EXPECT_LE(cp.current_delay(), cp_config.delta_max);
}

TEST(RtSapp, CallbackReportsCycleSuccess) {
  InProcTransport transport(fast_net());
  RtSappDevice device(transport, core::SappDeviceConfig{});
  core::SappCpConfig cp_config;
  cp_config.timeouts = fast_timeouts();
  cp_config.initial_delay = 0.05;
  cp_config.delta_min = 0.02;
  std::atomic<int> successes{0};
  RtControlPointBase::Callbacks callbacks;
  callbacks.on_cycle_success = [&](double, double) { ++successes; };
  RtSappControlPoint cp(transport, device.id(), cp_config, callbacks);
  cp.start();
  std::this_thread::sleep_for(300ms);
  cp.stop();
  EXPECT_GT(successes, 2);
}

TEST(RtLossy, RetransmissionsCoverLoss) {
  auto net_config = fast_net();
  net_config.loss = 0.10;
  InProcTransport transport(net_config);
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.01;
  device_config.d_min = 0.04;
  RtDcppDevice device(transport, device_config);

  core::DcppCpConfig cp_config;
  cp_config.timeouts = fast_timeouts();
  RtDcppControlPoint cp(transport, device.id(), cp_config);
  cp.start();
  std::this_thread::sleep_for(800ms);
  cp.stop();
  // 10% loss must not cause a false absence: 4 probes/cycle make the
  // cycle failure probability ~1e-4.
  EXPECT_TRUE(cp.device_considered_present());
  EXPECT_GT(cp.cycles_succeeded(), 8u);
  // Some retransmissions happened.
  EXPECT_GT(cp.probes_sent(), cp.cycles_succeeded());
}

}  // namespace
}  // namespace probemon::runtime
