// Tests for the event-loop runtime: AsyncUdpTransport routing and peer
// learning over real sockets, device/control-point protocol behaviour
// (clean cycles, retransmission, absence), the AsyncPresenceService
// facade, and a few-hundred-endpoint smoke run on one loop thread.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/event_loop/async_control_point.hpp"
#include "runtime/event_loop/async_device.hpp"
#include "runtime/event_loop/async_presence.hpp"
#include "runtime/event_loop/async_udp.hpp"
#include "runtime/event_loop/event_loop.hpp"
#include "telemetry/registry.hpp"

namespace probemon::runtime {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Tight protocol timings so tests finish in milliseconds, not the
/// paper's tens of seconds.
core::TimeoutConfig fast_timeouts() {
  core::TimeoutConfig timeouts;
  timeouts.tof = 0.020;
  timeouts.tos = 0.015;
  return timeouts;
}

core::DcppDeviceConfig fast_dcpp_device() {
  core::DcppDeviceConfig config;
  config.delta_min = 0.005;
  config.d_min = 0.02;
  return config;
}

core::DcppCpConfig fast_dcpp_cp() {
  core::DcppCpConfig config;
  config.timeouts = fast_timeouts();
  return config;
}

core::SappCpConfig fast_sapp_cp() {
  core::SappCpConfig config;
  config.timeouts = fast_timeouts();
  config.delta_min = 0.005;
  config.initial_delay = 0.01;
  return config;
}

TEST(AsyncUdpTransport, SendSideUnroutableIsCounted) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);  // loop not running: direct calls OK
  net::Message msg;
  msg.kind = net::MessageKind::kProbe;
  msg.from = 1;
  msg.to = 999;  // neither attached nor a known peer
  transport.send(msg);
  EXPECT_EQ(transport.unroutable_count(), 1u);
  // sent/delivered/send_errors/unroutable partition the datagrams:
  // an unroutable one was never handed to the kernel.
  transport.flush();
  EXPECT_EQ(transport.sent_count(), 0u);
  EXPECT_EQ(transport.send_error_count(), 0u);
}

TEST(AsyncUdpTransport, LearnsPeerFromDatagramSource) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  AsyncDcppDevice device(transport, fast_dcpp_device());
  loop.start();

  // Pose as an external control point on a raw socket: first datagram
  // teaches the transport our port, the device's reply comes back.
  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in local{};
  local.sin_family = AF_INET;
  local.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&local), sizeof local), 0);
  timeval rcv_timeout{2, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout, sizeof rcv_timeout);

  const net::NodeId external_cp = 0x40000000;
  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = external_cp;
  probe.to = device.id();
  probe.cycle = 7;
  std::uint8_t wire[kUdpWireSize];
  udp_encode(probe, wire);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(transport.local_port());
  ASSERT_EQ(sendto(fd, wire, sizeof wire, 0,
                   reinterpret_cast<sockaddr*>(&dst), sizeof dst),
            static_cast<ssize_t>(sizeof wire));

  std::uint8_t reply_wire[kUdpWireSize + 8];
  const ssize_t n = recv(fd, reply_wire, sizeof reply_wire, 0);
  ASSERT_EQ(n, static_cast<ssize_t>(kUdpWireSize))
      << "no reply routed back to the learned peer";
  net::Message reply;
  ASSERT_TRUE(udp_decode(reply_wire, kUdpWireSize, reply));
  EXPECT_EQ(reply.kind, net::MessageKind::kReply);
  EXPECT_EQ(reply.from, device.id());
  EXPECT_EQ(reply.to, external_cp);
  EXPECT_EQ(reply.cycle, 7u);
  EXPECT_GE(reply.grant_delay, 0.0);
  EXPECT_EQ(device.probes_received(), 1u);

  close(fd);
  loop.stop();
}

TEST(AsyncUdpTransport, MalformedDatagramCountsRecvError) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  AsyncDcppDevice device(transport, fast_dcpp_device());
  loop.start();

  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(transport.local_port());
  const char junk[5] = {1, 2, 3, 4, 5};  // wrong size: undecodable
  ASSERT_EQ(sendto(fd, junk, sizeof junk, 0,
                   reinterpret_cast<sockaddr*>(&dst), sizeof dst),
            static_cast<ssize_t>(sizeof junk));
  EXPECT_TRUE(eventually([&] { return transport.recv_error_count() == 1; }));
  EXPECT_EQ(device.probes_received(), 0u);
  close(fd);
  loop.stop();
}

TEST(AsyncRuntime, DcppCyclesSucceedOverRealUdp) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  AsyncDcppDevice device(transport, fast_dcpp_device());
  std::atomic<int> successes{0};
  std::atomic<double> last_delay{-1.0};
  AsyncControlPointBase::Callbacks callbacks;
  callbacks.on_cycle = [&](const AsyncControlPointBase::CycleInfo& info) {
    if (info.success) {
      ++successes;
      last_delay.store(info.next_delay);
      EXPECT_GE(info.rtt, 0.0);
      EXPECT_LE(info.start, info.end);
      EXPECT_EQ(info.attempts, 1);  // loopback: no retransmissions
    }
  };
  AsyncDcppControlPoint cp(transport, device.id(), fast_dcpp_cp(), callbacks);
  loop.post([&cp] { cp.start(); });
  loop.start();

  EXPECT_TRUE(eventually([&] { return successes.load() >= 3; }));
  EXPECT_TRUE(cp.device_considered_present());
  EXPECT_GE(cp.cycles_succeeded(), 3u);
  EXPECT_EQ(cp.cycles_failed(), 0u);
  // DCPP delay is the device's grant: bounded by [0, d_min].
  EXPECT_GE(last_delay.load(), 0.0);
  EXPECT_LE(last_delay.load(), fast_dcpp_device().d_min + 1e-9);
  EXPECT_GE(device.probes_received(), cp.cycles_succeeded());
  loop.stop();
}

TEST(AsyncRuntime, SappCycleObservesProbeCounter) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  core::SappDeviceConfig device_config;
  AsyncSappDevice device(transport, device_config);
  std::atomic<int> successes{0};
  AsyncControlPointBase::Callbacks callbacks;
  callbacks.on_cycle_success = [&successes](double, double) { ++successes; };
  AsyncSappControlPoint cp(transport, device.id(), fast_sapp_cp(), callbacks);
  loop.post([&cp] { cp.start(); });
  loop.start();

  EXPECT_TRUE(eventually([&] { return successes.load() >= 2; }));
  // Every probe bumps pc by Delta = l_ideal / l_nom.
  EXPECT_GT(device.probes_received(), 0u);
  EXPECT_EQ(device.probe_counter(),
            device_config.delta() * device.probes_received());
  // The adaptive delay stays within the configured band.
  EXPECT_GE(cp.delta(), fast_sapp_cp().delta_min - 1e-9);
  EXPECT_LE(cp.delta(), fast_sapp_cp().delta_max + 1e-9);
  loop.stop();
}

TEST(AsyncRuntime, SilentDeviceDeclaredAbsentAndMonitoringStops) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  AsyncDcppDevice device(transport, fast_dcpp_device());
  std::atomic<int> absences{0};
  std::atomic<double> absent_at{-1.0};
  AsyncControlPointBase::Callbacks callbacks;
  callbacks.on_absent = [&](net::NodeId dev, double t) {
    EXPECT_EQ(dev, device.id());
    absent_at.store(t);
    ++absences;
  };
  AsyncDcppControlPoint cp(transport, device.id(), fast_dcpp_cp(), callbacks);

  device.go_silent();
  loop.post([&cp] { cp.start(); });
  loop.start();

  EXPECT_TRUE(eventually([&] { return absences.load() == 1; }));
  EXPECT_FALSE(cp.device_considered_present());
  EXPECT_EQ(cp.cycles_failed(), 1u);
  EXPECT_EQ(cp.cycles_succeeded(), 0u);
  // First probe + max_retransmissions retries, then silence.
  const auto sent = cp.probes_sent();
  EXPECT_EQ(sent, 1u + fast_timeouts().max_retransmissions);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(cp.probes_sent(), sent) << "monitoring must stop on absence";
  // Detection takes at least TOF + R*TOS of wall time.
  EXPECT_GE(absent_at.load(),
            fast_timeouts().tof +
                fast_timeouts().max_retransmissions * fast_timeouts().tos -
                1e-3);
  loop.stop();
}

TEST(AsyncRuntime, StaleRepliesFromOlderCyclesAreIgnored) {
  // A device that comes back mid-retransmission must not resurrect an
  // older cycle: drive the CP against a device that goes silent for
  // one full cycle, then answers again — counters must stay coherent.
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  AsyncDcppDevice device(transport, fast_dcpp_device());
  std::atomic<int> completed{0};
  AsyncControlPointBase::Callbacks callbacks;
  callbacks.on_cycle = [&completed](const AsyncControlPointBase::CycleInfo&) {
    ++completed;
  };
  AsyncDcppControlPoint cp(transport, device.id(), fast_dcpp_cp(), callbacks);
  loop.post([&cp] { cp.start(); });
  loop.start();
  EXPECT_TRUE(eventually([&] { return completed.load() >= 2; }));
  device.go_silent();
  std::this_thread::sleep_for(30ms);  // at least one retransmission
  device.come_back();
  EXPECT_TRUE(eventually([&] { return completed.load() >= 5; }));
  EXPECT_TRUE(cp.device_considered_present());
  EXPECT_EQ(cp.cycles_failed(), 0u);
  loop.stop();
}

TEST(AsyncPresence, WatchUnwatchLifecycle) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  AsyncDcppDevice device(transport, fast_dcpp_device());

  telemetry::Registry registry;
  AsyncPresenceService::TelemetryOptions telemetry_options;
  telemetry_options.registry = &registry;
  AsyncPresenceService service(transport, telemetry_options);

  std::atomic<int> events{0};
  std::atomic<int> present_events{0};
  service.subscribe([&](const PresenceEvent& event) {
    ++events;
    if (event.state == Presence::kPresent) ++present_events;
  });

  loop.start();
  service.watch_dcpp(device.id(), fast_dcpp_cp());  // off-loop: posts
  EXPECT_TRUE(eventually([&] { return service.present(device.id()); }));
  EXPECT_EQ(service.watch_count(), 1u);
  EXPECT_GE(present_events.load(), 1);

  const auto watches = service.snapshotWatches();
  ASSERT_EQ(watches.size(), 1u);
  EXPECT_EQ(watches[0].device, device.id());
  EXPECT_EQ(watches[0].state, Presence::kPresent);
  EXPECT_GT(watches[0].cycles_succeeded, 0u);
  EXPECT_GT(watches[0].probes_sent, 0u);
  EXPECT_GT(watches[0].next_probe_due, 0.0);

  const auto stats = service.stats();
  EXPECT_GT(stats.probes_sent, 0u);
  EXPECT_GT(stats.cycles_succeeded, 0u);

  // The p99 source must be populated by successful cycles.
  ASSERT_NE(service.reply_latency(), nullptr);
  EXPECT_GT(service.reply_latency()->count(), 0u);

  service.unwatch(device.id());
  EXPECT_TRUE(eventually([&] { return service.watch_count() == 0; }));
  EXPECT_EQ(service.presence(device.id()), Presence::kUnknown);
  loop.stop();
}

TEST(AsyncPresence, AbsenceTransitionReported) {
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  AsyncDcppDevice device(transport, fast_dcpp_device());
  AsyncPresenceService service(transport);

  std::atomic<int> absent_events{0};
  service.subscribe([&](const PresenceEvent& event) {
    if (event.state == Presence::kAbsent) ++absent_events;
  });
  loop.start();
  service.watch_dcpp(device.id(), fast_dcpp_cp());
  EXPECT_TRUE(eventually([&] { return service.present(device.id()); }));

  device.go_silent();
  EXPECT_TRUE(eventually([&] { return absent_events.load() == 1; }));
  EXPECT_EQ(service.presence(device.id()), Presence::kAbsent);
  EXPECT_GE(service.stats().cycles_failed, 1u);
  loop.stop();
}

TEST(AsyncPresence, TwoHundredEndpointSmoke) {
  // The scale shape of bench_rt_scale in miniature: one loop thread,
  // one socket, 200 devices + 200 control points, everyone present.
  EventLoop loop;
  AsyncUdpTransport transport(loop);
  constexpr int kEndpoints = 200;
  std::vector<std::unique_ptr<AsyncDcppDevice>> devices;
  devices.reserve(kEndpoints);
  for (int i = 0; i < kEndpoints; ++i) {
    devices.push_back(
        std::make_unique<AsyncDcppDevice>(transport, fast_dcpp_device()));
  }
  telemetry::Registry registry;
  AsyncPresenceService::TelemetryOptions telemetry_options;
  telemetry_options.registry = &registry;
  AsyncPresenceService service(transport, telemetry_options);

  // Watch the whole fleet before starting the loop (direct path), with
  // start jitter spreading first probes across one d_min.
  for (int i = 0; i < kEndpoints; ++i) {
    service.watch_dcpp(devices[static_cast<std::size_t>(i)]->id(),
                       fast_dcpp_cp(),
                       0.02 * i / kEndpoints);
  }
  EXPECT_EQ(service.watch_count(), static_cast<std::size_t>(kEndpoints));
  loop.start();

  auto present_count = [&service] {
    std::size_t present = 0;
    for (const auto& info : service.snapshotWatches()) {
      if (info.state == Presence::kPresent) ++present;
    }
    return present;
  };
  EXPECT_TRUE(eventually(
      [&] { return present_count() == static_cast<std::size_t>(kEndpoints); },
      5000ms));
  EXPECT_GE(service.stats().cycles_succeeded,
            static_cast<std::uint64_t>(kEndpoints));
  EXPECT_EQ(transport.recv_error_count(), 0u);
  EXPECT_EQ(transport.unroutable_count(), 0u);
  loop.stop();
}

}  // namespace
}  // namespace probemon::runtime
