// Tests for CSV export, text tables, gnuplot script generation, and the
// string helpers they rely on.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/series.hpp"
#include "trace/csv.hpp"
#include "trace/gnuplot.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"

namespace probemon::trace {
namespace {

TEST(Csv, SingleSeriesFormat) {
  stats::TimeSeries s("load");
  s.add(1.0, 10.5);
  s.add(2.5, 11.0);
  std::ostringstream os;
  write_csv(os, s);
  EXPECT_EQ(os.str(), "t,load\n1,10.5\n2.5,11\n");
}

TEST(Csv, UnnamedSeriesGetsDefaultHeader) {
  stats::TimeSeries s;
  s.add(0.0, 1.0);
  std::ostringstream os;
  write_csv(os, s);
  EXPECT_EQ(os.str().substr(0, 8), "t,value\n");
}

TEST(Csv, AlignedSeriesSampleAndHold) {
  stats::TimeSeries a("a"), b("b");
  a.add(0.0, 1.0);
  a.add(2.0, 3.0);
  b.add(1.0, 5.0);
  std::ostringstream os;
  write_csv_aligned(os, {&a, &b}, 0.0, 2.0, 1.0);
  EXPECT_EQ(os.str(), "t,a,b\n0,1,\n1,1,5\n2,3,5\n");
}

TEST(Csv, AlignedRejectsBadStep) {
  stats::TimeSeries a("a");
  std::ostringstream os;
  EXPECT_THROW(write_csv_aligned(os, {&a}, 0.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Csv, FileWriteFailsLoudly) {
  stats::TimeSeries s("x");
  EXPECT_THROW(write_csv_file("/nonexistent_dir_zz/out.csv", s),
               std::runtime_error);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("x").cell(1.5, 1);
  t.row().cell("longer-name").cell(22.25, 2);
  const std::string out = t.to_string();
  // Header and both rows present, aligned pipes.
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| x           | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22.25 |"), std::string::npos);
}

TEST(Table, MissingCellsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string out = t.to_string();
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, IntegerAndUnsignedCells) {
  Table t({"i", "u"});
  t.row().cell(-3).cell(std::uint64_t{7});
  EXPECT_NE(t.to_string().find("-3"), std::string::npos);
  EXPECT_NE(t.to_string().find("7"), std::string::npos);
}

TEST(Gnuplot, ScriptContainsAllSeries) {
  GnuplotFigure fig;
  fig.title = "Load and #CPs over 30 min";
  fig.ylabel = "probes/s";
  fig.xrange = "[1000:2800]";
  fig.series.push_back({"data.csv", 2, "Device Load"});
  fig.series.push_back({"data.csv", 3, "#Control Points"});
  const std::string script = render_gnuplot(fig, "out.png");
  EXPECT_NE(script.find("set output 'out.png'"), std::string::npos);
  EXPECT_NE(script.find("set xrange [1000:2800]"), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
  EXPECT_NE(script.find("Device Load"), std::string::npos);
  EXPECT_NE(script.find("separator ','"), std::string::npos);
}

TEST(Gnuplot, DefaultStyleIsSteps) {
  GnuplotFigure fig;
  fig.series.push_back({"x.csv", 2, "x"});
  EXPECT_NE(render_gnuplot(fig, "o.png").find("with steps"),
            std::string::npos);
}

}  // namespace
}  // namespace probemon::trace

namespace probemon::util {
namespace {

TEST(Strings, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.123456789, 4), "0.1235");
  EXPECT_EQ(format_double(std::nan("")), "nan");
  EXPECT_EQ(format_double(INFINITY), "inf");
}

TEST(Strings, FormatFixedKeepsZeros) {
  EXPECT_EQ(format_fixed(1.5, 3), "1.500");
  EXPECT_EQ(format_fixed(-2.0, 1), "-2.0");
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(5.0), "5s");
  EXPECT_EQ(format_duration(65.0), "1m 5s");
  EXPECT_EQ(format_duration(20000.0), "5h 33m 20s");  // the paper's Fig 2
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("xyzw", 3), "xyzw");  // no truncation
}

}  // namespace
}  // namespace probemon::util
