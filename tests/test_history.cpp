// TimeSeriesHistory + the query grammar: ring retention, window
// queries (rate/increase/avg/min/max/quantile), reset correction,
// track_prefix selection, and parse_query/eval_query round trips.
// All time is injected — nothing here reads a clock.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "telemetry/history/history.hpp"
#include "telemetry/history/query.hpp"
#include "telemetry/registry.hpp"

namespace probemon {
namespace {

using telemetry::Labels;
using telemetry::parse_query;
using telemetry::QueryFn;
using telemetry::Registry;
using telemetry::TimeSeriesHistory;

TEST(TimeSeriesHistory, ValidatesConfig) {
  Registry reg;
  EXPECT_THROW(TimeSeriesHistory(reg, {.sample_period_s = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(TimeSeriesHistory(reg, {.sample_period_s = 1.0, .slots = 1}),
               std::invalid_argument);
}

TEST(TimeSeriesHistory, SamplesTrackedSeriesAndAnswersPointQueries) {
  Registry reg;
  auto& load = reg.gauge("probemon_load");
  TimeSeriesHistory history(reg);
  history.track("probemon_load");

  EXPECT_TRUE(std::isnan(history.last("probemon_load", {})));
  load.set(2.0);
  history.sample(1.0);
  load.set(6.0);
  history.sample(2.0);
  load.set(4.0);
  history.sample(3.0);

  EXPECT_EQ(history.series_count(), 1u);
  EXPECT_EQ(history.samples_taken(), 3u);
  EXPECT_EQ(history.last_sample_time(), 3.0);
  EXPECT_EQ(history.last("probemon_load", {}), 4.0);
  EXPECT_EQ(history.avg("probemon_load", {}, 10.0), 4.0);
  EXPECT_EQ(history.min("probemon_load", {}, 10.0), 2.0);
  EXPECT_EQ(history.max("probemon_load", {}, 10.0), 6.0);
  // Window [1, 3] trimmed to [2, 3]: the t=1 point falls out.
  EXPECT_EQ(history.min("probemon_load", {}, 1.0), 4.0);
  EXPECT_GT(history.retained_bytes(), 0u);
}

TEST(TimeSeriesHistory, UntrackedSeriesAreNotSampled) {
  Registry reg;
  reg.gauge("probemon_a").set(1.0);
  reg.gauge("probemon_b").set(2.0);
  TimeSeriesHistory history(reg);
  history.track("probemon_a");
  history.sample(1.0);
  EXPECT_EQ(history.series_count(), 1u);
  EXPECT_TRUE(std::isnan(history.last("probemon_b", {})));
}

TEST(TimeSeriesHistory, TracksByLabelSetAndPrefix) {
  Registry reg;
  reg.counter("probemon_x_total", "", {{"cp", "a"}}).inc(1);
  reg.counter("probemon_x_total", "", {{"cp", "b"}}).inc(2);
  reg.gauge("probemon_y").set(9);
  TimeSeriesHistory history(reg);
  history.track("probemon_x_total", {{"cp", "a"}});
  history.sample(1.0);
  EXPECT_EQ(history.last("probemon_x_total", {{"cp", "a"}}), 1.0);
  EXPECT_TRUE(std::isnan(history.last("probemon_x_total", {{"cp", "b"}})));

  TimeSeriesHistory by_prefix(reg);
  by_prefix.track_prefix("probemon_x");
  by_prefix.sample(1.0);
  EXPECT_EQ(by_prefix.series_count(), 2u);
  EXPECT_TRUE(std::isnan(by_prefix.last("probemon_y", {})));
}

TEST(TimeSeriesHistory, RingDropsOldestAtCapacity) {
  Registry reg;
  auto& g = reg.gauge("probemon_g");
  TimeSeriesHistory history(reg, {.sample_period_s = 1.0, .slots = 4});
  history.track("probemon_g");
  for (int i = 1; i <= 10; ++i) {
    g.set(i);
    history.sample(static_cast<double>(i));
  }
  const auto points = history.points("probemon_g", {}, 100.0);
  ASSERT_EQ(points.size(), 4u);  // only the newest 4 retained
  EXPECT_EQ(points.front().t, 7.0);
  EXPECT_EQ(points.back().t, 10.0);
  EXPECT_EQ(points.front().value, 7.0);
  EXPECT_EQ(history.min("probemon_g", {}, 100.0), 7.0);
}

TEST(TimeSeriesHistory, EqualTimeResamplesOverwriteTheNewestPoint) {
  Registry reg;
  auto& g = reg.gauge("probemon_g");
  TimeSeriesHistory history(reg);
  history.track("probemon_g");
  g.set(1.0);
  history.sample(5.0);
  g.set(2.0);
  history.sample(5.0);  // replayed tick: same t, updated value
  const auto points = history.points("probemon_g", {}, 100.0);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].value, 2.0);
}

TEST(TimeSeriesHistory, RateAndIncreaseAreResetCorrected) {
  Registry reg;
  auto& c = reg.counter("probemon_c_total");
  TimeSeriesHistory history(reg);
  history.track("probemon_c_total");
  c.inc(10);
  history.sample(0.0);
  c.inc(10);  // 20
  history.sample(10.0);

  EXPECT_EQ(history.increase("probemon_c_total", {}, 100.0), 10.0);
  EXPECT_EQ(history.rate("probemon_c_total", {}, 100.0), 1.0);
  // One point in range is not enough for a rate.
  EXPECT_TRUE(std::isnan(history.rate("probemon_c_total", {}, 0.5)));

  // Counter resets (agent restart): the drop to 3 must count the new
  // value, not a negative delta. Samples: 20 -> reset -> 3 -> 8.
  reg.remove("probemon_c_total");
  auto& c2 = reg.counter("probemon_c_total");
  c2.inc(3);
  history.sample(20.0);
  c2.inc(5);  // 8
  history.sample(30.0);
  // increase = (20-10) + 3 + (8-3) = 18 over [0, 30]
  EXPECT_EQ(history.increase("probemon_c_total", {}, 100.0), 18.0);
  EXPECT_DOUBLE_EQ(history.rate("probemon_c_total", {}, 100.0), 18.0 / 30.0);
}

TEST(TimeSeriesHistory, QuantileDifferencesCumulativeBucketStates) {
  Registry reg;
  auto& h = reg.histogram("probemon_d_seconds", {0.1, 1.0, 10.0});
  TimeSeriesHistory history(reg);
  history.track("probemon_d_seconds");

  h.observe(0.05);  // old observation, outside the later window
  history.sample(0.0);
  for (int i = 0; i < 8; ++i) h.observe(0.5);
  h.observe(5.0);
  h.observe(5.0);
  history.sample(10.0);

  // Window covering both samples: 10 in-window observations, 8 in
  // (0.1, 1.0], 2 in (1.0, 10.0]. p50 interpolates inside (0.1, 1.0].
  const double p50 =
      history.quantile(0.5, "probemon_d_seconds", {}, 100.0);
  EXPECT_GT(p50, 0.1);
  EXPECT_LE(p50, 1.0);
  // p99 lands in the (1.0, 10.0] bucket.
  const double p99 =
      history.quantile(0.99, "probemon_d_seconds", {}, 100.0);
  EXPECT_GT(p99, 1.0);
  EXPECT_LE(p99, 10.0);

  // A later empty window: no new observations -> NaN, not a stale value.
  history.sample(20.0);
  history.sample(30.0);
  EXPECT_TRUE(
      std::isnan(history.quantile(0.99, "probemon_d_seconds", {}, 15.0)));

  EXPECT_THROW(history.quantile(1.5, "probemon_d_seconds", {}, 10.0),
               std::invalid_argument);
}

TEST(TimeSeriesHistory, QuantileClampsInfBucketToLargestFiniteBound) {
  Registry reg;
  auto& h = reg.histogram("probemon_d_seconds", {0.1, 1.0});
  TimeSeriesHistory history(reg);
  history.track("probemon_d_seconds");
  history.sample(0.0);
  for (int i = 0; i < 4; ++i) h.observe(100.0);  // all in +Inf bucket
  history.sample(1.0);
  EXPECT_EQ(history.quantile(0.9, "probemon_d_seconds", {}, 10.0), 1.0);
}

TEST(QueryGrammar, ParsesEveryForm) {
  auto expr = parse_query("probemon_watches");
  EXPECT_EQ(expr.fn, QueryFn::kLast);
  EXPECT_EQ(expr.series, "probemon_watches");
  EXPECT_EQ(expr.range_s, 0.0);

  expr = parse_query(
      "rate(probemon_presence_transitions_total{state=\"absent\"}[120])");
  EXPECT_EQ(expr.fn, QueryFn::kRate);
  EXPECT_EQ(expr.labels, (Labels{{"state", "absent"}}));
  EXPECT_EQ(expr.range_s, 120.0);

  expr = parse_query("quantile(0.99, probemon_detection_latency_seconds[60s])");
  EXPECT_EQ(expr.fn, QueryFn::kQuantile);
  EXPECT_EQ(expr.q, 0.99);
  EXPECT_EQ(expr.range_s, 60.0);

  EXPECT_EQ(parse_query("avg(m[2m])").range_s, 120.0);
  EXPECT_EQ(parse_query("max(m[1h])").range_s, 3600.0);
  EXPECT_EQ(parse_query(" min( m ) ").fn, QueryFn::kMin);
}

TEST(QueryGrammar, RejectsMalformedExpressions) {
  const char* bad[] = {
      "",                        // empty
      "rate(",                   // unterminated
      "rate(m",                  // missing ')'
      "nope(m)",                 // unknown function
      "quantile(m)",             // quantile needs q
      "quantile(2, m)",          // q out of [0,1]
      "rate(m[0])",              // range must be > 0
      "rate(m[5x])",             // bad unit
      "m{key=value}",            // unquoted label value
      "m[10] trailing",          // trailing junk
      "1bad_name",               // invalid metric name
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_query(text), std::invalid_argument) << text;
  }
}

TEST(QueryGrammar, EvalMatchesDirectQueries) {
  Registry reg;
  auto& c = reg.counter("probemon_c_total");
  TimeSeriesHistory history(reg);
  history.track("probemon_c_total");
  c.inc(4);
  history.sample(0.0);
  c.inc(6);
  history.sample(10.0);

  EXPECT_EQ(telemetry::eval_query(parse_query("probemon_c_total"), history,
                                  60.0),
            10.0);
  EXPECT_EQ(telemetry::eval_query(parse_query("increase(probemon_c_total)"),
                                  history, 60.0),
            6.0);
  // Explicit range beats the default.
  EXPECT_TRUE(std::isnan(telemetry::eval_query(
      parse_query("rate(probemon_c_total[1])"), history, 60.0)));
}

}  // namespace
}  // namespace probemon
