// MetricsCollector + metrics JSON parser + MetricsPusher: the push
// half of the fleet telemetry pipeline. Covers the parse round-trip
// (to_json -> parse_metrics_json), absolute/idempotent ingest
// semantics, vanished-series removal on full reports, forget(), and a
// pusher -> HTTP -> collector end-to-end loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/metrics_push.hpp"
#include "telemetry/export.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/metrics_parse.hpp"
#include "telemetry/registry.hpp"

namespace probemon {
namespace {

using telemetry::MetricType;
using telemetry::Registry;
using telemetry::Sample;

TEST(MetricsParse, RoundTripsEveryMetricShape) {
  Registry reg;
  reg.counter("probemon_probes_total", "Probes", {{"cp", "a"}}).inc(7);
  reg.gauge("probemon_load").set(-1.5);
  auto& h = reg.histogram("probemon_delay_seconds", {0.1, 1.0}, "Delay");
  h.observe(0.05);
  h.observe(50.0);

  const auto doc = telemetry::parse_metrics_json(telemetry::to_json(reg));
  EXPECT_EQ(doc.agent, "");
  EXPECT_FALSE(doc.full);
  const auto want = reg.snapshot();
  ASSERT_EQ(doc.samples.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(doc.samples[i].name, want[i].name);
    EXPECT_EQ(doc.samples[i].help, want[i].help);
    EXPECT_EQ(doc.samples[i].labels, want[i].labels);
    EXPECT_EQ(doc.samples[i].type, want[i].type);
    EXPECT_EQ(doc.samples[i].value, want[i].value);
    EXPECT_EQ(doc.samples[i].bounds, want[i].bounds);
    EXPECT_EQ(doc.samples[i].buckets, want[i].buckets);
    EXPECT_EQ(doc.samples[i].count, want[i].count);
    EXPECT_EQ(doc.samples[i].sum, want[i].sum);
  }
}

TEST(MetricsParse, ParsesEnvelopeAndEscapes) {
  const auto doc = telemetry::parse_metrics_json(
      R"({"agent": "node-7", "full": true, "unknown_key": [1, {"x": null}],
          "metrics": [{"name": "m_total", "type": "counter",
                       "labels": {"device": "a\"bé"}, "value": 3}]})");
  EXPECT_EQ(doc.agent, "node-7");
  EXPECT_TRUE(doc.full);
  ASSERT_EQ(doc.samples.size(), 1u);
  EXPECT_EQ(doc.samples[0].labels[0].second, "a\"b\xc3\xa9");
  EXPECT_EQ(doc.samples[0].value, 3.0);
}

TEST(MetricsParse, RejectsMalformedDocuments) {
  EXPECT_THROW(telemetry::parse_metrics_json("{"), std::runtime_error);
  EXPECT_THROW(telemetry::parse_metrics_json("[]"), std::runtime_error);
  EXPECT_THROW(telemetry::parse_metrics_json(R"({"metrics": 3})"),
               std::runtime_error);
  // name must be a string, value numeric.
  EXPECT_THROW(telemetry::parse_metrics_json(
                   R"({"metrics": [{"name": 3, "type": "counter"}]})"),
               std::runtime_error);
  EXPECT_THROW(
      telemetry::parse_metrics_json(
          R"({"metrics": [{"name": "m", "type": "counter", "value": "x"}]})"),
      std::runtime_error);
  // histogram bucket list must be bounds+1 long.
  EXPECT_THROW(telemetry::parse_metrics_json(
                   R"({"metrics": [{"name": "m", "type": "histogram",
                       "count": 1, "sum": 1, "bounds": [1.0],
                       "buckets": [1]}]})"),
               std::runtime_error);
}

/// Serialize a registry as the push-protocol envelope body.
std::string report_body(const Registry& reg, const std::string& agent,
                        bool full) {
  std::string body = telemetry::to_json(reg);
  // to_json -> {"metrics": [...]}; splice in the envelope fields.
  const std::string head =
      "{\"agent\": \"" + agent + "\", \"full\": " + (full ? "true" : "false") +
      ", ";
  return head + body.substr(1);
}

TEST(MetricsCollector, IngestIsAbsoluteAndIdempotent) {
  runtime::MetricsCollector collector(4);
  Registry agent;
  agent.counter("probemon_probes_total", "Probes", {{"device", "1"}}).inc(5);

  EXPECT_EQ(collector.ingest(report_body(agent, "node-1", true)), 1u);
  auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 5.0);
  // The merged view appends the agent label after the original labels.
  EXPECT_EQ(merged[0].labels,
            (telemetry::Labels{{"device", "1"}, {"agent", "node-1"}}));

  // Re-ingesting the same absolute state must not double-count, and a
  // later report overwrites rather than accumulates.
  EXPECT_EQ(collector.ingest(report_body(agent, "node-1", true)), 1u);
  agent.counter("probemon_probes_total", "", {{"device", "1"}}).inc(2);  // 7
  EXPECT_EQ(collector.ingest(report_body(agent, "node-1", false)), 1u);
  merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 7.0);
  EXPECT_EQ(collector.reports_ingested(), 3u);
  EXPECT_EQ(collector.samples_ingested(), 3u);
}

TEST(MetricsCollector, FullReportRemovesVanishedSeries) {
  runtime::MetricsCollector collector(4);
  Registry before;
  before.counter("probemon_a_total").inc(1);
  before.gauge("probemon_g", "", {{"device", "2"}}).set(4);
  collector.ingest(report_body(before, "node-1", true));
  EXPECT_EQ(collector.merged().size(), 2u);

  Registry after;  // probemon_g{device=2} vanished (device went away)
  after.counter("probemon_a_total").inc(3);
  collector.ingest(report_body(after, "node-1", true));
  const auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].name, "probemon_a_total");
  EXPECT_EQ(merged[0].value, 3.0);
  EXPECT_EQ(collector.agent_snapshot("node-1").size(), 1u);

  // A delta report must NOT remove unreported series.
  Registry delta;
  delta.gauge("probemon_new_g").set(1);
  collector.ingest(report_body(delta, "node-1", false));
  EXPECT_EQ(collector.merged().size(), 2u);
}

TEST(MetricsCollector, AgentsAreIsolatedAndForgettable) {
  runtime::MetricsCollector collector(4);
  Registry a1;
  a1.counter("probemon_x_total").inc(1);
  Registry a2;
  a2.counter("probemon_x_total").inc(10);
  collector.ingest(report_body(a1, "node-1", true));
  collector.ingest(report_body(a2, "node-2", true));
  EXPECT_EQ(collector.agents(),
            (std::vector<std::string>{"node-1", "node-2"}));
  EXPECT_EQ(collector.merged().size(), 2u);  // one series per agent label

  EXPECT_TRUE(collector.forget("node-1"));
  EXPECT_FALSE(collector.forget("node-1"));
  EXPECT_EQ(collector.agent_count(), 1u);
  const auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].labels[0],
            (std::pair<std::string, std::string>{"agent", "node-2"}));
}

TEST(MetricsCollector, HistogramRebucketRecreatesTheSeries) {
  runtime::MetricsCollector collector(4);
  Registry before;
  before.histogram("probemon_h_seconds", {0.1, 1.0}).observe(0.5);
  collector.ingest(report_body(before, "node-1", true));

  Registry after;  // agent restarted with different bucket layout
  after.histogram("probemon_h_seconds", {0.5, 5.0, 50.0}).observe(2.0);
  collector.ingest(report_body(after, "node-1", true));
  const auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].bounds, (std::vector<double>{0.5, 5.0, 50.0}));
  EXPECT_EQ(merged[0].count, 1u);
}

TEST(MetricsCollector, ReportWithoutAgentIdThrows) {
  runtime::MetricsCollector collector(4);
  Registry reg;
  reg.counter("probemon_x_total").inc(1);
  EXPECT_THROW(collector.ingest(telemetry::to_json(reg)),
               std::runtime_error);
}

TEST(MetricsPusher, RequiresAgentAndPort) {
  Registry reg;
  runtime::MetricsPusher::Config config;
  config.agent = "node-1";
  EXPECT_THROW(runtime::MetricsPusher(reg, config), std::invalid_argument);
  config.agent = "";
  config.port = 1;
  EXPECT_THROW(runtime::MetricsPusher(reg, config), std::invalid_argument);
}

TEST(MetricsPusher, EndToEndDeltasReachTheCollector) {
  runtime::MetricsCollector collector(4);
  telemetry::HttpServer server({.port = 0});
  runtime::register_collector_routes(server, collector);
  server.start();

  Registry agent;
  auto& probes = agent.counter("probemon_probes_total", "Probes");
  probes.inc(5);
  runtime::MetricsPusher::Config config;
  config.port = server.port();
  config.agent = "node-1";
  runtime::MetricsPusher pusher(agent, config);

  ASSERT_TRUE(pusher.push_once());  // first report: full
  auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 5.0);

  EXPECT_TRUE(pusher.push_once());  // nothing changed: skipped, still ok
  EXPECT_EQ(pusher.pushes_skipped(), 1u);
  EXPECT_EQ(collector.reports_ingested(), 1u);

  probes.inc(2);
  ASSERT_TRUE(pusher.push_once());  // delta carries the new absolute value
  merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 7.0);
  EXPECT_EQ(pusher.pushes_ok(), 2u);

  // /agents reports the fleet roster.
  const auto agents = telemetry::http_get("127.0.0.1", server.port(),
                                          "/agents");
  EXPECT_TRUE(agents.ok());
  EXPECT_NE(agents.body.find("\"agent\":\"node-1\""), std::string::npos)
      << agents.body;
  server.stop();

  // With the collector gone the push fails and the pusher schedules a
  // full resync for the next successful report.
  probes.inc(1);
  EXPECT_FALSE(pusher.push_once());
  EXPECT_EQ(pusher.pushes_failed(), 1u);
}

}  // namespace
}  // namespace probemon
