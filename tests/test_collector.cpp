// MetricsCollector + metrics JSON parser + MetricsPusher: the push
// half of the fleet telemetry pipeline. Covers the parse round-trip
// (to_json -> parse_metrics_json), absolute/idempotent ingest
// semantics, vanished-series removal on full reports, forget(), and a
// pusher -> HTTP -> collector end-to-end loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/metrics_push.hpp"
#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/metrics_parse.hpp"
#include "telemetry/registry.hpp"

namespace probemon {
namespace {

using telemetry::MetricType;
using telemetry::Registry;
using telemetry::Sample;

TEST(MetricsParse, RoundTripsEveryMetricShape) {
  Registry reg;
  reg.counter("probemon_probes_total", "Probes", {{"cp", "a"}}).inc(7);
  reg.gauge("probemon_load").set(-1.5);
  auto& h = reg.histogram("probemon_delay_seconds", {0.1, 1.0}, "Delay");
  h.observe(0.05);
  h.observe(50.0);

  const auto doc = telemetry::parse_metrics_json(telemetry::to_json(reg));
  EXPECT_EQ(doc.agent, "");
  EXPECT_FALSE(doc.full);
  const auto want = reg.snapshot();
  ASSERT_EQ(doc.samples.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(doc.samples[i].name, want[i].name);
    EXPECT_EQ(doc.samples[i].help, want[i].help);
    EXPECT_EQ(doc.samples[i].labels, want[i].labels);
    EXPECT_EQ(doc.samples[i].type, want[i].type);
    EXPECT_EQ(doc.samples[i].value, want[i].value);
    EXPECT_EQ(doc.samples[i].bounds, want[i].bounds);
    EXPECT_EQ(doc.samples[i].buckets, want[i].buckets);
    EXPECT_EQ(doc.samples[i].count, want[i].count);
    EXPECT_EQ(doc.samples[i].sum, want[i].sum);
  }
}

TEST(MetricsParse, ParsesEnvelopeAndEscapes) {
  const auto doc = telemetry::parse_metrics_json(
      R"({"agent": "node-7", "full": true, "unknown_key": [1, {"x": null}],
          "metrics": [{"name": "m_total", "type": "counter",
                       "labels": {"device": "a\"bé"}, "value": 3}]})");
  EXPECT_EQ(doc.agent, "node-7");
  EXPECT_TRUE(doc.full);
  ASSERT_EQ(doc.samples.size(), 1u);
  EXPECT_EQ(doc.samples[0].labels[0].second, "a\"b\xc3\xa9");
  EXPECT_EQ(doc.samples[0].value, 3.0);
}

TEST(MetricsParse, RejectsMalformedDocuments) {
  EXPECT_THROW(telemetry::parse_metrics_json("{"), std::runtime_error);
  EXPECT_THROW(telemetry::parse_metrics_json("[]"), std::runtime_error);
  EXPECT_THROW(telemetry::parse_metrics_json(R"({"metrics": 3})"),
               std::runtime_error);
  // name must be a string, value numeric.
  EXPECT_THROW(telemetry::parse_metrics_json(
                   R"({"metrics": [{"name": 3, "type": "counter"}]})"),
               std::runtime_error);
  EXPECT_THROW(
      telemetry::parse_metrics_json(
          R"({"metrics": [{"name": "m", "type": "counter", "value": "x"}]})"),
      std::runtime_error);
  // histogram bucket list must be bounds+1 long.
  EXPECT_THROW(telemetry::parse_metrics_json(
                   R"({"metrics": [{"name": "m", "type": "histogram",
                       "count": 1, "sum": 1, "bounds": [1.0],
                       "buckets": [1]}]})"),
               std::runtime_error);
}

/// Serialize a registry as the push-protocol envelope body.
std::string report_body(const telemetry::MetricStore& reg,
                        const std::string& agent, bool full) {
  std::string body = telemetry::to_json(reg);
  // to_json -> {"metrics": [...]}; splice in the envelope fields.
  const std::string head =
      "{\"agent\": \"" + agent + "\", \"full\": " + (full ? "true" : "false") +
      ", ";
  return head + body.substr(1);
}

TEST(MetricsCollector, IngestIsAbsoluteAndIdempotent) {
  runtime::MetricsCollector collector(4);
  Registry agent;
  agent.counter("probemon_probes_total", "Probes", {{"device", "1"}}).inc(5);

  EXPECT_EQ(collector.ingest(report_body(agent, "node-1", true)), 1u);
  auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 5.0);
  // The merged view appends the agent label after the original labels.
  EXPECT_EQ(merged[0].labels,
            (telemetry::Labels{{"device", "1"}, {"agent", "node-1"}}));

  // Re-ingesting the same absolute state must not double-count, and a
  // later report overwrites rather than accumulates.
  EXPECT_EQ(collector.ingest(report_body(agent, "node-1", true)), 1u);
  agent.counter("probemon_probes_total", "", {{"device", "1"}}).inc(2);  // 7
  EXPECT_EQ(collector.ingest(report_body(agent, "node-1", false)), 1u);
  merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 7.0);
  EXPECT_EQ(collector.reports_ingested(), 3u);
  EXPECT_EQ(collector.samples_ingested(), 3u);
}

TEST(MetricsCollector, FullReportRemovesVanishedSeries) {
  runtime::MetricsCollector collector(4);
  Registry before;
  before.counter("probemon_a_total").inc(1);
  before.gauge("probemon_g", "", {{"device", "2"}}).set(4);
  collector.ingest(report_body(before, "node-1", true));
  EXPECT_EQ(collector.merged().size(), 2u);

  Registry after;  // probemon_g{device=2} vanished (device went away)
  after.counter("probemon_a_total").inc(3);
  collector.ingest(report_body(after, "node-1", true));
  const auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].name, "probemon_a_total");
  EXPECT_EQ(merged[0].value, 3.0);
  EXPECT_EQ(collector.agent_snapshot("node-1").size(), 1u);

  // A delta report must NOT remove unreported series.
  Registry delta;
  delta.gauge("probemon_new_g").set(1);
  collector.ingest(report_body(delta, "node-1", false));
  EXPECT_EQ(collector.merged().size(), 2u);
}

TEST(MetricsCollector, AgentsAreIsolatedAndForgettable) {
  runtime::MetricsCollector collector(4);
  Registry a1;
  a1.counter("probemon_x_total").inc(1);
  Registry a2;
  a2.counter("probemon_x_total").inc(10);
  collector.ingest(report_body(a1, "node-1", true));
  collector.ingest(report_body(a2, "node-2", true));
  EXPECT_EQ(collector.agents(),
            (std::vector<std::string>{"node-1", "node-2"}));
  EXPECT_EQ(collector.merged().size(), 2u);  // one series per agent label

  EXPECT_TRUE(collector.forget("node-1"));
  EXPECT_FALSE(collector.forget("node-1"));
  EXPECT_EQ(collector.agent_count(), 1u);
  const auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].labels[0],
            (std::pair<std::string, std::string>{"agent", "node-2"}));
}

TEST(MetricsCollector, HistogramRebucketRecreatesTheSeries) {
  runtime::MetricsCollector collector(4);
  Registry before;
  before.histogram("probemon_h_seconds", {0.1, 1.0}).observe(0.5);
  collector.ingest(report_body(before, "node-1", true));

  Registry after;  // agent restarted with different bucket layout
  after.histogram("probemon_h_seconds", {0.5, 5.0, 50.0}).observe(2.0);
  collector.ingest(report_body(after, "node-1", true));
  const auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].bounds, (std::vector<double>{0.5, 5.0, 50.0}));
  EXPECT_EQ(merged[0].count, 1u);
}

TEST(MetricsCollector, ReportWithoutAgentIdThrows) {
  runtime::MetricsCollector collector(4);
  Registry reg;
  reg.counter("probemon_x_total").inc(1);
  EXPECT_THROW(collector.ingest(telemetry::to_json(reg)),
               std::runtime_error);
}

TEST(MetricsPusher, RequiresAgentAndPort) {
  Registry reg;
  runtime::MetricsPusher::Config config;
  config.agent = "node-1";
  EXPECT_THROW(runtime::MetricsPusher(reg, config), std::invalid_argument);
  config.agent = "";
  config.port = 1;
  EXPECT_THROW(runtime::MetricsPusher(reg, config), std::invalid_argument);
}

TEST(MetricsPusher, EndToEndDeltasReachTheCollector) {
  runtime::MetricsCollector collector(4);
  telemetry::HttpServer server({.port = 0});
  runtime::register_collector_routes(server, collector);
  server.start();

  Registry agent;
  auto& probes = agent.counter("probemon_probes_total", "Probes");
  probes.inc(5);
  runtime::MetricsPusher::Config config;
  config.port = server.port();
  config.agent = "node-1";
  runtime::MetricsPusher pusher(agent, config);

  ASSERT_TRUE(pusher.push_once());  // first report: full
  auto merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 5.0);

  EXPECT_TRUE(pusher.push_once());  // nothing changed: skipped, still ok
  EXPECT_EQ(pusher.pushes_skipped(), 1u);
  EXPECT_EQ(collector.reports_ingested(), 1u);

  probes.inc(2);
  ASSERT_TRUE(pusher.push_once());  // delta carries the new absolute value
  merged = collector.merged().snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, 7.0);
  EXPECT_EQ(pusher.pushes_ok(), 2u);

  // /agents reports the fleet roster.
  const auto agents = telemetry::http_get("127.0.0.1", server.port(),
                                          "/agents");
  EXPECT_TRUE(agents.ok());
  EXPECT_NE(agents.body.find("\"agent\":\"node-1\""), std::string::npos)
      << agents.body;
  server.stop();

  // With the collector gone the push fails and the pusher schedules a
  // full resync for the next successful report.
  probes.inc(1);
  EXPECT_FALSE(pusher.push_once());
  EXPECT_EQ(pusher.pushes_failed(), 1u);
}

// ------------------------------------------------ parse hardening

TEST(MetricsParse, TruncatedBodiesThrowInsteadOfAborting) {
  Registry reg;
  reg.counter("probemon_x_total", "X", {{"device", "1"}}).inc(3);
  reg.histogram("probemon_h_seconds", {0.1, 1.0}).observe(0.5);
  const std::string body = report_body(reg, "node-1", true);
  // Every strict prefix must produce a structured error, never a crash.
  for (std::size_t cut : {body.size() / 4, body.size() / 2, body.size() - 1}) {
    EXPECT_THROW(telemetry::parse_metrics_json(body.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(MetricsParse, DuplicateKeysAreFirstWins) {
  // The DOM keeps object order, and lookups return the first match —
  // a malicious double "agent"/"value" cannot smuggle a second value.
  const auto doc = telemetry::parse_metrics_json(
      R"({"agent": "real", "agent": "spoof", "metrics": [
          {"name": "m_total", "type": "counter", "value": 1, "value": 9}]})");
  EXPECT_EQ(doc.agent, "real");
  ASSERT_EQ(doc.samples.size(), 1u);
  EXPECT_EQ(doc.samples[0].value, 1.0);
}

TEST(MetricsParse, NanAndBadNumbersAreStructuredErrors) {
  EXPECT_THROW(telemetry::parse_metrics_json(
                   R"({"metrics": [{"name": "m", "type": "gauge",
                       "value": NaN}]})"),
               std::runtime_error);
  EXPECT_THROW(telemetry::parse_metrics_json(
                   R"({"metrics": [{"name": "m", "type": "gauge",
                       "value": 1.2.3}]})"),
               std::runtime_error);
  EXPECT_THROW(telemetry::parse_metrics_json(
                   R"({"metrics": [{"name": "m", "type": "gauge",
                       "value": Infinity}]})"),
               std::runtime_error);
  // The collector surfaces the same errors as exceptions, not aborts.
  runtime::MetricsCollector collector(4);
  EXPECT_THROW(collector.ingest(R"({"agent": "a", "metrics": [{"name": "m",
                                    "type": "gauge", "value": NaN}]})"),
               std::runtime_error);
}

// ------------------------------------------------ agent presence

runtime::CollectorPresenceConfig test_presence() {
  runtime::CollectorPresenceConfig presence;
  presence.expected_period_s = 1.0;
  presence.beta = 1.5;
  presence.alpha_inc = 2.0;
  presence.alpha_dec = 1.5;
  presence.deadline_min_s = 0.5;
  presence.deadline_max_s = 64.0;
  presence.deadline_initial_s = 4.0;
  return presence;
}

TEST(CollectorPresence, DeadlineAdaptsToTheObservedPushGap) {
  runtime::MetricsCollector collector(4, test_presence());
  double now = 0.0;
  collector.set_clock([&now] { return now; });

  Registry slow;
  auto& sc = slow.counter("probemon_s_total");
  Registry fast;
  auto& fc = fast.counter("probemon_f_total");

  // "slow" pushes every 10 s (way past beta * 1 s): its deadline doubles
  // per push. "fast" pushes every 0.1 s: its deadline shrinks by
  // alpha_dec per push down to the clamp.
  for (int i = 0; i < 8; ++i) {
    now = i * 10.0;
    sc.inc();
    collector.ingest(report_body(slow, "slow", i == 0));
    for (int j = 0; j < 100; ++j) {
      if (i * 100 + j == 0) continue;  // first fast push at 0.1
      now = (i * 100 + j) * 0.1;
      fc.inc();
      collector.ingest(report_body(fast, "fast", false));
    }
  }
  const auto presence = collector.agent_presence();
  ASSERT_EQ(presence.size(), 2u);
  EXPECT_EQ(presence[0].agent, "fast");
  EXPECT_EQ(presence[0].deadline_s, 0.5);  // clamped at deadline_min_s
  EXPECT_EQ(presence[1].agent, "slow");
  EXPECT_EQ(presence[1].deadline_s, 64.0);  // clamped at deadline_max_s
}

TEST(CollectorPresence, StalledAgentGoesAbsentAndAlertFires) {
  runtime::MetricsCollector collector(4, test_presence());
  double now = 0.0;
  collector.set_clock([&now] { return now; });
  telemetry::AlertEngine engine;
  collector.attach_alert_engine(engine);

  Registry a;
  auto& ac = a.counter("probemon_a_total");
  Registry b;
  auto& bc = b.counter("probemon_b_total");
  ac.inc();
  collector.ingest(report_body(a, "agent-a", true));
  bc.inc();
  collector.ingest(report_body(b, "agent-b", true));
  // agent-b keeps its 1 s cadence; agent-a never pushes again.
  for (int i = 1; i <= 4; ++i) {
    now = i;
    bc.inc();
    collector.ingest(report_body(b, "agent-b", false));
  }

  now = 5.0;  // agent-a staleness 5 > 4 s deadline; agent-b 1 < 4
  EXPECT_EQ(collector.update_presence(), 1u);
  const auto presence = collector.agent_presence();
  ASSERT_EQ(presence.size(), 2u);
  EXPECT_TRUE(presence[0].absent);
  EXPECT_EQ(presence[0].agent, "agent-a");
  EXPECT_EQ(presence[0].staleness_s, 5.0);
  EXPECT_FALSE(presence[1].absent);

  auto statuses = engine.snapshot();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].labels,
            (telemetry::Labels{{"rule", "agent_absent"}, {"agent", "agent-a"}}));
  EXPECT_EQ(statuses[0].state, telemetry::AlertState::kFiring);
  EXPECT_EQ(statuses[0].value, 5.0);
  EXPECT_EQ(statuses[1].state, telemetry::AlertState::kInactive);

  // The agent comes back: one push resolves its alert without waiting
  // for the next update_presence sweep.
  now = 5.5;
  ac.inc();
  collector.ingest(report_body(a, "agent-a", false));
  statuses = engine.snapshot();
  EXPECT_EQ(statuses[0].state, telemetry::AlertState::kResolved);
  EXPECT_EQ(collector.update_presence(), 0u);
}

TEST(CollectorPresence, SelfMetricsExportStalenessAndVanishOnForget) {
  runtime::MetricsCollector collector(4, test_presence());
  double now = 0.0;
  collector.set_clock([&now] { return now; });
  telemetry::AlertEngine engine;
  collector.attach_alert_engine(engine);

  Registry a;
  a.counter("probemon_a_total").inc(1);
  collector.ingest(report_body(a, "agent-a", true));
  now = 2.0;
  collector.update_presence();

  auto find_gauge = [](const std::vector<Sample>& samples,
                       const std::string& name,
                       const std::string& agent) -> const Sample* {
    for (const auto& s : samples) {
      bool match = s.name == name;
      for (const auto& [k, v] : s.labels) {
        if (k == "agent" && v != agent) match = false;
      }
      if (match) return &s;
    }
    return nullptr;
  };
  const auto self = collector.self_metrics().snapshot();
  const Sample* staleness = find_gauge(
      self, "probemon_collector_agent_staleness_seconds", "agent-a");
  ASSERT_NE(staleness, nullptr);
  EXPECT_EQ(staleness->value, 2.0);
  ASSERT_NE(find_gauge(self, "probemon_collector_agent_deadline_seconds",
                       "agent-a"),
            nullptr);

  // An upstream collector aggregating this collector's self-metrics
  // (collector-of-collectors) sees the per-agent gauges...
  runtime::MetricsCollector upstream(4);
  upstream.ingest(report_body(collector.self_metrics(), "collector-1", true));
  auto upstream_view = upstream.agent_snapshot("collector-1");
  EXPECT_NE(find_gauge(upstream_view,
                       "probemon_collector_agent_staleness_seconds", "agent-a"),
            nullptr);

  // ...and forget() removes them at the source, so the next full report
  // erases them upstream too instead of resurrecting stale state.
  EXPECT_TRUE(collector.forget("agent-a"));
  const auto after = collector.self_metrics().snapshot();
  EXPECT_EQ(find_gauge(after, "probemon_collector_agent_staleness_seconds",
                       "agent-a"),
            nullptr);
  EXPECT_EQ(find_gauge(after, "probemon_collector_agent_deadline_seconds",
                       "agent-a"),
            nullptr);
  EXPECT_EQ(find_gauge(after, "probemon_collector_agent_absent", "agent-a"),
            nullptr);
  EXPECT_TRUE(collector.agent_presence().empty());
  EXPECT_TRUE(engine.snapshot().empty());  // condition instance dropped

  upstream.ingest(report_body(collector.self_metrics(), "collector-1", true));
  upstream_view = upstream.agent_snapshot("collector-1");
  EXPECT_EQ(find_gauge(upstream_view,
                       "probemon_collector_agent_staleness_seconds", "agent-a"),
            nullptr);
}

TEST(CollectorPresence, AgentsRouteFiltersByStateAndRejectsUnknown) {
  runtime::MetricsCollector collector(4, test_presence());
  double now = 0.0;
  collector.set_clock([&now] { return now; });
  telemetry::HttpServer server({.port = 0});
  runtime::register_collector_routes(server, collector);
  server.start();

  Registry a;
  a.counter("probemon_a_total").inc(1);
  collector.ingest(report_body(a, "agent-a", true));
  Registry b;
  b.counter("probemon_b_total").inc(1);
  collector.ingest(report_body(b, "agent-b", true));
  for (int i = 1; i <= 5; ++i) {  // agent-b keeps its 1 s cadence
    now = i;
    b.counter("probemon_b_total").inc(1);
    collector.ingest(report_body(b, "agent-b", false));
  }
  now = 6.0;  // agent-a staleness 6 > 4 s deadline; agent-b 1 < 4

  const auto absent = telemetry::http_get("127.0.0.1", server.port(),
                                          "/agents?state=absent");
  EXPECT_TRUE(absent.ok());
  EXPECT_NE(absent.body.find("\"agent\":\"agent-a\""), std::string::npos)
      << absent.body;
  EXPECT_EQ(absent.body.find("\"agent\":\"agent-b\""), std::string::npos);
  EXPECT_NE(absent.body.find("\"state\":\"absent\""), std::string::npos);
  EXPECT_NE(absent.body.find("\"deadline_s\":4"), std::string::npos);

  const auto ok = telemetry::http_get("127.0.0.1", server.port(),
                                      "/agents?state=ok");
  EXPECT_NE(ok.body.find("\"agent\":\"agent-b\""), std::string::npos);
  EXPECT_EQ(ok.body.find("\"agent\":\"agent-a\""), std::string::npos);

  const auto bad = telemetry::http_get("127.0.0.1", server.port(),
                                       "/agents?state=gone");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("\"error\":"), std::string::npos) << bad.body;
  EXPECT_NE(bad.body.find("state must be ok or absent"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace probemon
