// Tests for the bounded-retransmission probe-cycle FSM (paper Fig 1):
// TOF/TOS timing, the 4-probe budget, stale-reply rejection, counters.
#include <gtest/gtest.h>

#include <vector>

#include "core/probe_cycle.hpp"
#include "des/scheduler.hpp"

namespace probemon::core {
namespace {

struct Harness {
  des::Scheduler sched;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> sent;
  std::vector<double> send_times;
  int successes = 0;
  int failures = 0;
  net::Message last_reply;

  ProbeCycle::Callbacks callbacks() {
    return ProbeCycle::Callbacks{
        [this](std::uint64_t cycle, std::uint8_t attempt) {
          sent.emplace_back(cycle, attempt);
          send_times.push_back(sched.now());
        },
        [this](const net::Message& reply) {
          ++successes;
          last_reply = reply;
        },
        [this] { ++failures; }};
  }

  net::Message reply_for(std::uint64_t cycle, std::uint8_t attempt = 0) {
    net::Message m;
    m.kind = net::MessageKind::kReply;
    m.cycle = cycle;
    m.attempt = attempt;
    return m;
  }
};

constexpr double kTof = 0.022;
constexpr double kTos = 0.021;

TEST(ProbeCycle, FirstProbeSentImmediatelyOnStart) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0], std::make_pair(std::uint64_t{1}, std::uint8_t{0}));
  EXPECT_TRUE(cycle.active());
}

TEST(ProbeCycle, ReplyEndsCycleSuccessfully) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  EXPECT_TRUE(cycle.offer_reply(h.reply_for(1)));
  EXPECT_EQ(h.successes, 1);
  EXPECT_FALSE(cycle.active());
  // Timeout must not fire afterwards.
  h.sched.run_until(1.0);
  EXPECT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.failures, 0);
  EXPECT_EQ(cycle.cycles_succeeded(), 1u);
}

TEST(ProbeCycle, RetransmitsWithTofThenTos) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  h.sched.run_until(10.0);  // nothing answers
  ASSERT_EQ(h.sent.size(), 4u);  // 1 + 3 retransmissions
  EXPECT_NEAR(h.send_times[1] - h.send_times[0], kTof, 1e-12);
  EXPECT_NEAR(h.send_times[2] - h.send_times[1], kTos, 1e-12);
  EXPECT_NEAR(h.send_times[3] - h.send_times[2], kTos, 1e-12);
  EXPECT_EQ(h.failures, 1);
  EXPECT_EQ(h.successes, 0);
  EXPECT_EQ(cycle.cycles_failed(), 1u);
  EXPECT_EQ(cycle.probes_sent(), 4u);
}

TEST(ProbeCycle, AttemptNumbersIncrease) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  h.sched.run_until(10.0);
  for (std::uint8_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.sent[i].second, i);
  }
}

TEST(ProbeCycle, ZeroRetransmissionsFailsAfterOneProbe) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 0, h.callbacks());
  cycle.start();
  h.sched.run_until(10.0);
  EXPECT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.failures, 1);
}

TEST(ProbeCycle, ReplyDuringRetransmissionPhaseAccepted) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  h.sched.run_until(kTof + 0.001);  // one retransmission out
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_TRUE(cycle.offer_reply(h.reply_for(1, 1)));
  EXPECT_EQ(h.successes, 1);
  h.sched.run_until(10.0);
  EXPECT_EQ(h.sent.size(), 2u);  // no further probes
}

TEST(ProbeCycle, StaleReplyFromPreviousCycleRejected) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  EXPECT_TRUE(cycle.offer_reply(h.reply_for(1)));
  cycle.start();  // cycle 2
  EXPECT_FALSE(cycle.offer_reply(h.reply_for(1)));  // duplicate of cycle 1
  EXPECT_EQ(h.successes, 1);
  EXPECT_TRUE(cycle.active());
  EXPECT_TRUE(cycle.offer_reply(h.reply_for(2)));
  EXPECT_EQ(h.successes, 2);
}

TEST(ProbeCycle, ReplyWhenInactiveRejected) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  EXPECT_FALSE(cycle.offer_reply(h.reply_for(0)));
  EXPECT_FALSE(cycle.offer_reply(h.reply_for(1)));
}

TEST(ProbeCycle, AbortStopsWithoutCallbacks) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  cycle.abort();
  h.sched.run_until(10.0);
  EXPECT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.successes, 0);
  EXPECT_EQ(h.failures, 0);
  EXPECT_FALSE(cycle.active());
}

TEST(ProbeCycle, StartWhileActiveThrows) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  EXPECT_THROW(cycle.start(), std::logic_error);
}

TEST(ProbeCycle, CycleNumbersIncrement) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  for (std::uint64_t c = 1; c <= 5; ++c) {
    cycle.start();
    EXPECT_EQ(cycle.cycle(), c);
    cycle.offer_reply(h.reply_for(c));
  }
  EXPECT_EQ(cycle.cycles_started(), 5u);
  EXPECT_EQ(cycle.cycles_succeeded(), 5u);
}

TEST(ProbeCycle, LastSendTimeTracksRetransmissions) {
  Harness h;
  ProbeCycle cycle(h.sched, kTof, kTos, 3, h.callbacks());
  cycle.start();
  EXPECT_EQ(cycle.cycle_start_time(), 0.0);
  h.sched.run_until(kTof + kTos + 0.001);  // two retransmissions out
  EXPECT_NEAR(cycle.last_send_time(), kTof + kTos, 1e-12);
  EXPECT_EQ(cycle.cycle_start_time(), 0.0);
}

TEST(ProbeCycle, ValidatesConstruction) {
  Harness h;
  EXPECT_THROW(ProbeCycle(h.sched, 0.0, kTos, 3, h.callbacks()),
               std::invalid_argument);
  EXPECT_THROW(ProbeCycle(h.sched, kTof, -1.0, 3, h.callbacks()),
               std::invalid_argument);
  EXPECT_THROW(ProbeCycle(h.sched, kTof, kTos, -1, h.callbacks()),
               std::invalid_argument);
  auto bad = h.callbacks();
  bad.on_success = nullptr;
  EXPECT_THROW(ProbeCycle(h.sched, kTof, kTos, 3, std::move(bad)),
               std::invalid_argument);
}

}  // namespace
}  // namespace probemon::core
