// Tests for the protocol event log: recording, persistence round-trip,
// and replay into fresh metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/observer_fanout.hpp"
#include "scenario/experiment.hpp"
#include "trace/event_log.hpp"

namespace probemon::trace {
namespace {

TEST(EventLog, RecordsTypedEvents) {
  EventLog log;
  log.on_probe_sent(1, 2, 0.5, 0);
  log.on_probe_received(2, 1, 0.51);
  log.on_cycle_success(1, 2, 0.52, 1);
  log.on_delay_updated(1, 0.52, 2.5);
  log.on_device_declared_absent(1, 2, 9.0);
  log.on_absence_learned(3, 2, 9.1);
  log.on_delta_changed(2, 10.0, 200000);
  EXPECT_EQ(log.size(), 7u);
  EXPECT_EQ(log.count(EventKind::kProbeSent), 1u);
  EXPECT_EQ(log.count(EventKind::kDelayUpdated), 1u);
  EXPECT_EQ(log.events()[3].value, 2.5);
  EXPECT_EQ(log.events()[6].extra, 200000u);
}

TEST(EventLog, SaveLoadRoundTrip) {
  EventLog log;
  log.on_probe_sent(1, 2, 0.5, 3);
  log.on_delay_updated(7, 123.456789, 0.021);
  log.on_delta_changed(2, 10.0, 12345678901ULL);
  std::stringstream buffer;
  log.save(buffer);
  const EventLog loaded = EventLog::load(buffer);
  ASSERT_EQ(loaded.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(loaded.events()[i], log.events()[i]) << "event " << i;
  }
}

TEST(EventLog, LoadRejectsGarbage) {
  std::stringstream bad1("not_a_tag|1|2|3|4|5\n");
  EXPECT_THROW(EventLog::load(bad1), std::runtime_error);
  std::stringstream bad2("delay|1|2\n");
  EXPECT_THROW(EventLog::load(bad2), std::runtime_error);
  std::stringstream bad3("delay|xyz|2|3|4|5\n");
  EXPECT_THROW(EventLog::load(bad3), std::runtime_error);
  std::stringstream empty("");
  EXPECT_EQ(EventLog::load(empty).size(), 0u);
}

TEST(EventLog, TagsRoundTrip) {
  for (auto kind :
       {EventKind::kProbeSent, EventKind::kProbeReceived,
        EventKind::kCycleSuccess, EventKind::kDelayUpdated,
        EventKind::kDeclaredAbsent, EventKind::kAbsenceLearned,
        EventKind::kDeltaChanged}) {
    EventKind parsed;
    ASSERT_TRUE(from_tag(to_tag(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  EventKind sink;
  EXPECT_FALSE(from_tag("bogus", sink));
}

TEST(EventLog, ReplayReproducesMetrics) {
  // Record a live run through Experiment::add_observer, then replay the
  // log into a fresh Metrics and compare against the live one.
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kDcpp;
  config.seed = 5;
  config.initial_cps = 4;
  scenario::Experiment exp(config);
  EventLog log;
  exp.add_observer(log);
  exp.schedule_device_departure(30.0);
  exp.run_until(40.0);
  exp.finish();

  scenario::Metrics replayed(config.metrics);
  log.replay(replayed);
  replayed.set_device_departure_time(30.0);
  replayed.finish(40.0);

  EXPECT_EQ(replayed.total_probes_sent(), exp.metrics().total_probes_sent());
  EXPECT_EQ(replayed.total_probes_received(),
            exp.metrics().total_probes_received());
  EXPECT_EQ(replayed.detection_latencies().size(),
            exp.metrics().detection_latencies().size());
  ASSERT_EQ(replayed.mean_delays().size(), exp.metrics().mean_delays().size());
  for (std::size_t i = 0; i < replayed.mean_delays().size(); ++i) {
    EXPECT_DOUBLE_EQ(replayed.mean_delays()[i],
                     exp.metrics().mean_delays()[i]);
  }
}

TEST(EventLog, ReplayAllowsDifferentAnalysisWindow) {
  // The point of the log: reanalyze one run with different metric
  // settings (here: a warmup cutoff) without re-simulating.
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kDcpp;
  config.seed = 6;
  config.initial_cps = 3;
  scenario::Experiment exp(config);
  EventLog log;
  exp.add_observer(log);
  exp.run_until(60.0);
  exp.finish();

  scenario::MetricsConfig strict;
  strict.warmup = 30.0;
  scenario::Metrics late(strict);
  log.replay(late);
  // Post-warmup moments must have fewer samples than the full run.
  std::uint64_t full = 0, trimmed = 0;
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    full += m.delay_moments.count();
  }
  for (const auto& [id, m] : late.per_cp()) {
    trimmed += m.delay_moments.count();
  }
  EXPECT_LT(trimmed, full);
  EXPECT_GT(trimmed, 0u);
}

TEST(FanoutObserver, BroadcastsToAllSinks) {
  EventLog a, b;
  core::FanoutObserver fan({&a, &b});
  fan.add(nullptr);  // ignored
  EXPECT_EQ(fan.size(), 2u);
  fan.on_probe_sent(1, 2, 0.1, 0);
  fan.on_delay_updated(1, 0.2, 5.0);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.events()[1], b.events()[1]);
}

}  // namespace
}  // namespace probemon::trace
