// Unit and statistical tests for the RNG substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace probemon::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256pp, Deterministic) {
  Xoshiro256pp a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, JumpProducesDisjointStream) {
  Xoshiro256pp a(99);
  Xoshiro256pp b(99);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(from_a.contains(b()));
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleOpen0NeverZero) {
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.next_double_open0(), 0.0);
    ASSERT_LE(rng.next_double_open0(), 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.01);
}

TEST(Rng, UniformU64CoversRangeInclusive) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.uniform_u64(3, 7));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5, 6, 7}));
}

TEST(Rng, UniformU64DegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(42, 42), 42u);
}

TEST(Rng, UniformI64HandlesNegatives) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_i64(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministicInTag) {
  Rng root(12);
  Rng a = root.fork(1);
  Rng b = root.fork(1);
  Rng c = root.fork(2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, ForkByStringMatchesHash) {
  Rng root(13);
  Rng a = root.fork("net.delay");
  Rng b = root.fork(fnv1a64("net.delay"));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkedStreamsLookIndependent) {
  Rng root(14);
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  // Correlation of the two streams should be near zero.
  const int n = 50000;
  double sa = 0, sb = 0, sab = 0, saa = 0, sbb = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.next_double();
    const double y = b.next_double();
    sa += x;
    sb += y;
    sab += x * y;
    saa += x * x;
    sbb += y * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::fabs(corr), 0.02);
}

TEST(Fnv1a64, StableKnownValues) {
  // FNV-1a 64 reference: empty string hashes to the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

}  // namespace
}  // namespace probemon::util
