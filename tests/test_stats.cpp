// Tests for the statistics library: Welford moments, time-weighted
// averages, Student-t quantiles, batch means, histograms, P^2 quantiles,
// and the fairness index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/autocorr.hpp"
#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "stats/student_t.hpp"
#include "stats/time_weighted.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace probemon::stats {
namespace {

TEST(Welford, MatchesTwoPassComputation) {
  util::Rng rng(1);
  std::vector<double> xs;
  Welford w;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-5.0, 13.0);
    xs.push_back(x);
    w.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.variance(), var, 1e-9);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_EQ(w.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(w.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Welford, MergeEqualsSequential) {
  util::Rng rng(2);
  Welford all, left, right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 1.0) * rng.uniform(0.0, 1.0);
    all.add(x);
    (i < 1700 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(left.skewness(), all.skewness(), 1e-6);
  EXPECT_NEAR(left.kurtosis(), all.kurtosis(), 1e-6);
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(Welford, EmptyReturnsNaN) {
  Welford w;
  EXPECT_TRUE(std::isnan(w.mean()));
  EXPECT_TRUE(std::isnan(w.variance()));
  EXPECT_TRUE(std::isnan(w.min()));
}

TEST(Welford, IrwinHallSkewAndKurtosis) {
  util::Rng rng(3);
  Welford w;
  for (int i = 0; i < 200000; ++i) {
    // Sum of 12 uniforms minus 6 (Irwin-Hall): symmetric, with exact
    // excess kurtosis -1.2/12 = -0.1.
    double x = -6.0;
    for (int j = 0; j < 12; ++j) x += rng.next_double();
    w.add(x);
  }
  EXPECT_NEAR(w.skewness(), 0.0, 0.03);
  EXPECT_NEAR(w.kurtosis(), -0.1, 0.05);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw;
  tw.set(0.0, 5.0);
  EXPECT_EQ(tw.mean_until(10.0), 5.0);
  EXPECT_EQ(tw.variance_until(10.0), 0.0);
}

TEST(TimeWeighted, StepSignalWeightsByDuration) {
  TimeWeighted tw;
  tw.set(0.0, 0.0);
  tw.set(9.0, 10.0);  // 0 for 9s, 10 for 1s
  EXPECT_NEAR(tw.mean_until(10.0), 1.0, 1e-12);
  // E[X^2] = (9*0 + 1*100)/10 = 10; var = 10 - 1 = 9.
  EXPECT_NEAR(tw.variance_until(10.0), 9.0, 1e-12);
  EXPECT_EQ(tw.min(), 0.0);
  EXPECT_EQ(tw.max(), 10.0);
}

TEST(TimeWeighted, TimeReversalThrows) {
  TimeWeighted tw;
  tw.set(5.0, 1.0);
  EXPECT_THROW(tw.set(4.0, 2.0), std::logic_error);
  EXPECT_THROW(tw.mean_until(4.0), std::logic_error);
}

TEST(StudentT, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.841344746), 1.0, 1e-6);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-5);
}

TEST(StudentT, QuantileKnownValues) {
  // Reference values from standard t tables.
  EXPECT_NEAR(student_t_quantile(0.975, 1), 12.7062, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 2), 4.30265, 1e-4);
  EXPECT_NEAR(student_t_quantile(0.975, 5), 2.57058, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 10), 2.22814, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.04227, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 10), 1.81246, 1e-3);
  // Symmetry.
  EXPECT_NEAR(student_t_quantile(0.025, 10), -student_t_quantile(0.975, 10),
              1e-9);
}

TEST(StudentT, ConvergesToNormalForLargeDof) {
  EXPECT_NEAR(student_t_quantile(0.975, 100000), normal_quantile(0.975),
              1e-4);
}

TEST(StudentT, CriticalValueIsTwoSided) {
  EXPECT_NEAR(student_t_critical(0.95, 10), student_t_quantile(0.975, 10),
              1e-12);
}

TEST(StudentT, RejectsBadArguments) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(0.5, 0), std::invalid_argument);
  EXPECT_THROW(student_t_critical(1.5, 10), std::invalid_argument);
}

TEST(BatchMeans, GroupsIntoBatches) {
  BatchMeans bm(10);
  for (int i = 0; i < 95; ++i) bm.add(static_cast<double>(i % 10));
  EXPECT_EQ(bm.batch_count(), 9u);  // 95 observations -> 9 full batches
  EXPECT_EQ(bm.observation_count(), 95u);
  EXPECT_NEAR(bm.mean(), 4.5, 1e-12);
}

TEST(BatchMeans, WarmupDiscardsInitialObservations) {
  BatchMeans bm(5, /*warmup=*/10);
  for (int i = 0; i < 20; ++i) bm.add(i < 10 ? 1000.0 : 1.0);
  EXPECT_EQ(bm.discarded_count(), 10u);
  EXPECT_EQ(bm.batch_count(), 2u);
  EXPECT_NEAR(bm.mean(), 1.0, 1e-12);
}

TEST(BatchMeans, IntervalCoversTrueMeanOnIidData) {
  // Property: ~95% of 95% CIs over iid batches should contain the truth.
  util::Rng rng(4);
  int covered = 0;
  const int kRuns = 300;
  for (int run = 0; run < kRuns; ++run) {
    BatchMeans bm(20);
    for (int i = 0; i < 600; ++i) bm.add(rng.uniform(0.0, 2.0));
    if (bm.interval(0.95).contains(1.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kRuns;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(BatchMeans, ConvergedRequiresTightInterval) {
  BatchMeans bm(10);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) bm.add(rng.uniform(0.0, 100.0));
  EXPECT_FALSE(bm.converged(0.001));
  for (int i = 0; i < 100000; ++i) bm.add(rng.uniform(49.0, 51.0));
  EXPECT_TRUE(bm.converged(0.1));
}

TEST(BatchMeans, IntervalNeedsTwoBatches) {
  BatchMeans bm(10);
  for (int i = 0; i < 10; ++i) bm.add(1.0);
  EXPECT_THROW(bm.interval(), std::logic_error);
}

TEST(BatchMeans, Lag1AutocorrelationNearZeroForIid) {
  util::Rng rng(6);
  BatchMeans bm(50);
  for (int i = 0; i < 50000; ++i) bm.add(rng.next_double());
  EXPECT_LT(std::fabs(bm.lag1_autocorrelation()), 0.1);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 0.2);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, RenderProducesBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string art = h.render(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(P2Quantile, SmallSampleIsExact) {
  P2Quantile p(0.5);
  p.add(3.0);
  p.add(1.0);
  p.add(2.0);
  EXPECT_NEAR(p.value(), 2.0, 1e-12);
}

TEST(P2Quantile, EstimatesMedianOfUniform) {
  util::Rng rng(7);
  P2Quantile p(0.5);
  for (int i = 0; i < 100000; ++i) p.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(p.value(), 5.0, 0.15);
}

TEST(P2Quantile, EstimatesTailQuantileOfExponential) {
  util::Rng rng(8);
  P2Quantile p(0.99);
  for (int i = 0; i < 200000; ++i) {
    p.add(-std::log(rng.next_double_open0()));
  }
  // True p99 of Exp(1) is -ln(0.01) = 4.605.
  EXPECT_NEAR(p.value(), 4.605, 0.25);
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(Autocorrelation, WhiteNoiseDecorrelatesImmediately) {
  util::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.next_double());
  const auto acf = autocorrelation(xs, 5);
  EXPECT_NEAR(acf[0], 1.0, 1e-12);
  for (std::size_t k = 1; k < acf.size(); ++k) {
    EXPECT_LT(std::fabs(acf[k]), 0.05);
  }
  EXPECT_EQ(decorrelation_lag(xs, 10), 1u);
}

TEST(Autocorrelation, PersistentSignalDecaysSlowly) {
  // AR(1) with phi = 0.9: acf[k] ~ 0.9^k.
  util::Rng rng(10);
  std::vector<double> xs;
  double x = 0;
  for (int i = 0; i < 50000; ++i) {
    x = 0.9 * x + rng.uniform(-1.0, 1.0);
    xs.push_back(x);
  }
  const auto acf = autocorrelation(xs, 3);
  EXPECT_NEAR(acf[1], 0.9, 0.05);
  EXPECT_NEAR(acf[2], 0.81, 0.05);
  EXPECT_GT(decorrelation_lag(xs, 50), 5u);
}

TEST(Autocorrelation, ConstantSeriesIsAllZero) {
  std::vector<double> xs(100, 3.0);
  const auto acf = autocorrelation(xs, 3);
  for (double a : acf) EXPECT_EQ(a, 0.0);
}

}  // namespace
}  // namespace probemon::stats
