// DCPP tests: the pure grant function (paper section 4's Delta(nt, t)),
// device scheduling invariants, and CP/device integration including the
// paper's fairness and load-cap claims.
#include <gtest/gtest.h>

#include <cmath>

#include "core/probemon.hpp"
#include "stats/series.hpp"

namespace probemon::core {
namespace {

DcppDeviceConfig paper_device() {
  DcppDeviceConfig c;
  c.delta_min = 0.1;  // L_nom = 10
  c.d_min = 0.5;      // f_max = 2
  return c;
}

// --- grant() (pure scheduling rule) -----------------------------------------

TEST(DcppGrant, IdleDeviceGrantsDmin) {
  // Schedule frontier in the past: the CP may come back after d_min.
  const auto config = paper_device();
  EXPECT_DOUBLE_EQ(DcppDevice::grant(0.0, 100.0, config), 0.5);
}

TEST(DcppGrant, BusyDeviceGrantsBacklogPlusDeltaMin) {
  const auto config = paper_device();
  // Frontier 2 s ahead: backlog 2 >= d_min, so spacing rule dominates.
  EXPECT_NEAR(DcppDevice::grant(102.0, 100.0, config), 2.1, 1e-9);
}

TEST(DcppGrant, TransitionRegionTopsUpToDmin) {
  const auto config = paper_device();
  // Backlog 0.3 < d_min: grant = 0.3 + (0.5 - 0.3)... Delta = max(0.1,
  // 0.2) = 0.2 -> grant = 0.5 exactly.
  EXPECT_DOUBLE_EQ(DcppDevice::grant(100.3, 100.0, config), 0.5);
}

TEST(DcppGrant, GrantNeverBelowDmin) {
  // Property (paper constraint ii): no CP is asked to probe sooner than
  // d_min after its current probe.
  const auto config = paper_device();
  util::Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    const double nt = t + rng.uniform(-50.0, 50.0);
    ASSERT_GE(DcppDevice::grant(nt, t, config), config.d_min - 1e-12);
  }
}

TEST(DcppGrant, ConsecutiveSlotsAtLeastDeltaMinApart) {
  // Property (paper constraint i): replaying any probe arrival sequence,
  // granted slot instants are >= delta_min apart.
  const auto config = paper_device();
  util::Rng rng(2);
  double nt = 0.0;
  double t = 0.0;
  double prev_slot = -1e9;
  for (int i = 0; i < 100000; ++i) {
    t += rng.uniform(0.0, 0.3);
    const double wait = DcppDevice::grant(nt, t, config);
    const double slot = t + wait;
    ASSERT_GE(slot - prev_slot, config.delta_min - 1e-9);
    prev_slot = slot;
    nt = slot;
  }
}

TEST(DcppGrant, SteadyStateLoadCapsAtLnom) {
  // Saturated frontier: each arrival advances nt by exactly delta_min,
  // i.e. at most L_nom grants per second.
  const auto config = paper_device();
  double nt = 100.0;
  const double t = 10.0;
  for (int i = 0; i < 100; ++i) {
    const double wait = DcppDevice::grant(nt, t, config);
    const double next = t + wait;
    EXPECT_NEAR(next - nt, config.delta_min, 1e-12);
    nt = next;
  }
}

// --- Device ------------------------------------------------------------------

TEST(DcppDevice, ReplyCarriesGrantAndAdvancesFrontier) {
  des::Simulation sim(1);
  auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  EntityArena arena;
  DcppDevice device(sim, *net, arena, paper_device());

  struct Probe final : net::INetworkClient {
    std::vector<net::Message> replies;
    void on_message(const net::Message& m) override { replies.push_back(m); }
  } cp;
  const net::NodeId cp_id = net->attach(cp);

  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = cp_id;
  probe.to = device.id();
  probe.cycle = 1;
  net->send(probe);
  sim.run_until(1.0);
  ASSERT_EQ(cp.replies.size(), 1u);
  EXPECT_NEAR(cp.replies[0].grant_delay, 0.5, 1e-9);
  EXPECT_GT(device.next_slot(), 0.0);
}

TEST(DcppDeviceConfig, Validation) {
  DcppDeviceConfig c;
  c.delta_min = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = DcppDeviceConfig{};
  c.d_min = c.delta_min / 2;  // d_min must be >= delta_min
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = DcppDeviceConfig{};
  EXPECT_DOUBLE_EQ(c.l_nom(), 10.0);
  EXPECT_DOUBLE_EQ(c.f_max(), 2.0);
}

// --- Integration --------------------------------------------------------------

struct DcppWorld {
  des::Simulation sim;
  EntityArena arena;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<DcppDevice> device;
  std::vector<std::unique_ptr<DcppControlPoint>> cps;

  explicit DcppWorld(std::uint64_t seed, std::size_t k)
      : sim(seed),
        net(net::Network::make_paper_default(sim.scheduler(), sim.rng())) {
    device = std::make_unique<DcppDevice>(sim, *net, arena, paper_device());
    for (std::size_t i = 0; i < k; ++i) {
      cps.push_back(std::make_unique<DcppControlPoint>(
          sim, *net, arena, device->id(), DcppCpConfig{}));
      cps.back()->start(0.01 * static_cast<double>(i));
    }
  }
};

TEST(DcppIntegration, LoadNeverExceedsLnomInSteadyState) {
  DcppWorld world(3, 20);
  world.sim.run_until(50.0);
  const auto before = world.device->probes_received();
  world.sim.run_until(250.0);
  const double load =
      static_cast<double>(world.device->probes_received() - before) / 200.0;
  EXPECT_LE(load, 10.0 * 1.05);
  EXPECT_GT(load, 8.0);
}

TEST(DcppIntegration, FewCpsProbeAtFmax) {
  DcppWorld world(4, 2);
  world.sim.run_until(200.0);
  // k * f_max = 4 < L_nom: each CP probes every d_min = 0.5 s.
  for (const auto& cp : world.cps) {
    EXPECT_NEAR(cp->current_delay(), 0.5, 0.05);
    EXPECT_NEAR(static_cast<double>(cp->cycle().cycles_succeeded()) / 200.0,
                2.0, 0.2);
  }
}

TEST(DcppIntegration, ManyCpsShareEqually) {
  constexpr std::size_t k = 20;
  DcppWorld world(5, k);
  world.sim.run_until(100.0);
  std::vector<std::uint64_t> before;
  for (const auto& cp : world.cps) {
    before.push_back(cp->cycle().cycles_succeeded());
  }
  world.sim.run_until(300.0);
  std::vector<double> shares;
  for (std::size_t i = 0; i < k; ++i) {
    shares.push_back(static_cast<double>(
        world.cps[i]->cycle().cycles_succeeded() - before[i]));
  }
  EXPECT_GT(stats::jain_fairness(shares), 0.99);
  // Per-CP period converges to k * delta_min = 2 s.
  for (const auto& cp : world.cps) {
    EXPECT_NEAR(cp->current_delay(), 2.0, 0.2);
  }
}

TEST(DcppIntegration, AllCpsDetectSilentDeviceWithinBound) {
  constexpr std::size_t k = 10;
  DcppWorld world(6, k);
  world.sim.run_until(100.0);
  world.device->go_silent();
  world.sim.run_until(110.0);
  const double bound =
      std::max(static_cast<double>(k) * 0.1, 0.5) + 0.022 + 3 * 0.021 + 0.05;
  for (const auto& cp : world.cps) {
    EXPECT_FALSE(cp->device_considered_present());
    EXPECT_LE(cp->absence_time() - 100.0, bound);
  }
}

TEST(DcppIntegration, JoiningBurstIsAbsorbed) {
  DcppWorld world(7, 5);
  world.sim.run_until(50.0);
  // 40 CPs join at the same instant (paper's worst case).
  for (int i = 0; i < 40; ++i) {
    world.cps.push_back(std::make_unique<DcppControlPoint>(
        world.sim, *world.net, world.arena, world.device->id(), DcppCpConfig{}));
    world.cps.back()->start();
  }
  world.sim.run_until(60.0);
  // Every CP must have been incorporated (no false absences).
  for (const auto& cp : world.cps) {
    EXPECT_TRUE(cp->device_considered_present());
    EXPECT_GT(cp->cycle().cycles_succeeded(), 0u);
  }
  // Post-burst load settles back to <= L_nom.
  const auto before = world.device->probes_received();
  world.sim.run_until(160.0);
  const double load =
      static_cast<double>(world.device->probes_received() - before) / 100.0;
  EXPECT_LE(load, 10.5);
}

TEST(DcppIntegration, OverlayNeighborsLearnedFromReplies) {
  DcppWorld world(8, 3);
  world.sim.run_until(30.0);
  // With three CPs interleaving, each should have heard of the others.
  std::size_t with_neighbors = 0;
  for (const auto& cp : world.cps) {
    if (!cp->overlay_neighbors().empty()) ++with_neighbors;
  }
  EXPECT_GE(with_neighbors, 2u);
}

}  // namespace
}  // namespace probemon::core
