// Tests for ControlPointBase behaviours not covered by the protocol
// suites: dissemination (gossip), bye handling, overlay learning, stop
// semantics, and the device-side service queue.
#include <gtest/gtest.h>

#include <memory>

#include "core/probemon.hpp"

namespace probemon::core {
namespace {

struct World {
  des::Simulation sim{11};
  EntityArena arena;
  std::unique_ptr<net::Network> net =
      net::Network::make_paper_default(sim.scheduler(), sim.rng());
};

TEST(ControlPoint, StopDetachesAndSilences) {
  World w;
  DcppDevice device(w.sim, *w.net, w.arena, DcppDeviceConfig{});
  DcppControlPoint cp(w.sim, *w.net, w.arena, device.id(), DcppCpConfig{});
  cp.start();
  w.sim.run_until(5.0);
  const auto cycles = cp.cycle().cycles_succeeded();
  EXPECT_GT(cycles, 0u);
  cp.stop();
  EXPECT_FALSE(cp.running());
  w.sim.run_until(20.0);
  EXPECT_EQ(cp.cycle().cycles_succeeded(), cycles);
  EXPECT_FALSE(w.net->attached(cp.id()));
}

TEST(ControlPoint, StartIsIdempotent) {
  World w;
  DcppDevice device(w.sim, *w.net, w.arena, DcppDeviceConfig{});
  DcppControlPoint cp(w.sim, *w.net, w.arena, device.id(), DcppCpConfig{});
  cp.start();
  cp.start();  // second start must not double-probe
  w.sim.run_until(1.0);
  EXPECT_EQ(cp.cycle().cycles_started(), cp.cycle().cycles_succeeded());
}

TEST(ControlPoint, StartJitterDelaysFirstProbe) {
  World w;
  DcppDevice device(w.sim, *w.net, w.arena, DcppDeviceConfig{});
  DcppControlPoint cp(w.sim, *w.net, w.arena, device.id(), DcppCpConfig{});
  cp.start(2.0);
  w.sim.run_until(1.9);
  EXPECT_EQ(cp.cycle().cycles_started(), 0u);
  w.sim.run_until(2.5);
  EXPECT_EQ(cp.cycle().cycles_started(), 1u);
}

TEST(ControlPoint, ByeFromOtherDeviceIgnored) {
  World w;
  DcppDevice device(w.sim, *w.net, w.arena, DcppDeviceConfig{});
  DcppControlPoint cp(w.sim, *w.net, w.arena, device.id(), DcppCpConfig{});
  cp.start();
  w.sim.run_until(2.0);
  net::Message bye;
  bye.kind = net::MessageKind::kBye;
  bye.from = 4242;  // unrelated sender, unrelated subject
  bye.to = cp.id();
  bye.subject = 4242;
  // Deliver directly (sender isn't attached).
  const_cast<DcppControlPoint&>(cp).on_message(bye);
  EXPECT_TRUE(cp.device_considered_present());
}

TEST(ControlPoint, NotifyMarksAbsentAndStopsProbing) {
  World w;
  DcppDevice device(w.sim, *w.net, w.arena, DcppDeviceConfig{});
  DcppControlPoint cp(w.sim, *w.net, w.arena, device.id(), DcppCpConfig{});
  cp.start();
  w.sim.run_until(2.0);
  const auto cycles = cp.cycle().cycles_started();
  net::Message notify;
  notify.kind = net::MessageKind::kNotify;
  notify.from = 77;
  notify.to = cp.id();
  notify.subject = device.id();
  notify.ttl = 1;
  cp.on_message(notify);
  EXPECT_FALSE(cp.device_considered_present());
  w.sim.run_until(10.0);
  EXPECT_LE(cp.cycle().cycles_started(), cycles + 1);
}

TEST(ControlPoint, GossipForwardsWithTtl) {
  // Three CPs on one device with dissemination: when the device goes
  // silent, the first detector's notify reaches the others through the
  // overlay.
  World w;
  DcppDevice device(w.sim, *w.net, w.arena, DcppDeviceConfig{});
  std::vector<std::unique_ptr<DcppControlPoint>> cps;
  for (int i = 0; i < 3; ++i) {
    cps.push_back(std::make_unique<DcppControlPoint>(
        w.sim, *w.net, w.arena, device.id(), DcppCpConfig{}));
    cps.back()->enable_dissemination(2);
    cps.back()->start(0.05 * i);
  }
  w.sim.run_until(10.0);  // overlay converges
  for (const auto& cp : cps) {
    EXPECT_FALSE(cp->overlay_neighbors().empty());
  }
  device.go_silent();
  w.sim.run_until(12.0);
  for (const auto& cp : cps) {
    EXPECT_FALSE(cp->device_considered_present());
  }
}

TEST(ControlPoint, OverlayCapsAtFourNeighbors) {
  World w;
  DcppDeviceConfig device_config;
  device_config.delta_min = 0.01;
  device_config.d_min = 0.02;
  DcppDevice device(w.sim, *w.net, w.arena, device_config);
  std::vector<std::unique_ptr<DcppControlPoint>> cps;
  for (int i = 0; i < 8; ++i) {
    cps.push_back(std::make_unique<DcppControlPoint>(
        w.sim, *w.net, w.arena, device.id(), DcppCpConfig{}));
    cps.back()->start(0.002 * i);
  }
  w.sim.run_until(30.0);
  for (const auto& cp : cps) {
    EXPECT_LE(cp->overlay_neighbors().size(), 4u);
  }
}

TEST(Device, ServiceQueueDrainsAndBoundsTurnaround) {
  World w;
  SappDevice device(w.sim, *w.net, w.arena, SappDeviceConfig{});

  struct Sink final : net::INetworkClient {
    std::vector<double> reply_times;
    des::Simulation* sim = nullptr;
    void on_message(const net::Message& m) override {
      if (m.kind == net::MessageKind::kReply) {
        reply_times.push_back(sim->now());
      }
    }
  } sink;
  sink.sim = &w.sim;
  const net::NodeId sink_id = w.net->attach(sink);

  // Burst of 10 probes at the same instant: the serial device answers
  // them one by one; the last reply must come after >= 10 * compute_min.
  for (std::uint64_t i = 0; i < 10; ++i) {
    net::Message probe;
    probe.kind = net::MessageKind::kProbe;
    probe.from = sink_id;
    probe.to = device.id();
    probe.cycle = i;
    w.net->send(probe);
  }
  w.sim.run_until(0.0001);
  EXPECT_GT(device.service_queue_length(), 0u);
  w.sim.run_until(5.0);
  ASSERT_EQ(sink.reply_times.size(), 10u);
  EXPECT_GE(sink.reply_times.back(), 10 * 0.001);
  EXPECT_EQ(device.service_queue_length(), 0u);
  // Replies are ordered (FIFO service).
  for (std::size_t i = 1; i < sink.reply_times.size(); ++i) {
    EXPECT_LE(sink.reply_times[i - 1], sink.reply_times[i]);
  }
}

TEST(Device, GoSilentMidComputationSuppressesReply) {
  World w;
  SappDevice device(w.sim, *w.net, w.arena, SappDeviceConfig{});
  struct Sink final : net::INetworkClient {
    int replies = 0;
    void on_message(const net::Message& m) override {
      if (m.kind == net::MessageKind::kReply) ++replies;
    }
  } sink;
  const net::NodeId sink_id = w.net->attach(sink);
  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = sink_id;
  probe.to = device.id();
  w.net->send(probe);
  w.sim.run_until(0.0008);  // probe delivered, computation in progress
  device.go_silent();
  device.come_back();  // even coming back must not resurrect the reply
  w.sim.run_until(5.0);
  EXPECT_EQ(sink.replies, 0);
}

TEST(Device, GracefulLeaveSendsByeToLastTwoProbers) {
  World w;
  DcppDevice device(w.sim, *w.net, w.arena, DcppDeviceConfig{});
  DcppControlPoint cp1(w.sim, *w.net, w.arena, device.id(), DcppCpConfig{});
  DcppControlPoint cp2(w.sim, *w.net, w.arena, device.id(), DcppCpConfig{});
  cp1.start();
  cp2.start(0.1);
  w.sim.run_until(5.0);
  device.leave_gracefully();
  w.sim.run_until(5.1);
  EXPECT_FALSE(cp1.device_considered_present());
  EXPECT_FALSE(cp2.device_considered_present());
  // Learned via bye, i.e. faster than a failed cycle (< 85 ms tail).
  EXPECT_LT(cp1.absence_time(), 5.05);
  EXPECT_LT(cp2.absence_time(), 5.05);
}

TEST(ControlPoint, DeviceFlappingIsTracked) {
  // A device that goes silent and comes back repeatedly: a CP with
  // continue_after_absence keeps probing and its presence verdict must
  // track the device's true state at each phase boundary.
  World w;
  DcppDeviceConfig device_config;
  device_config.delta_min = 0.05;
  device_config.d_min = 0.1;  // fast probing: verdicts update quickly
  DcppDevice device(w.sim, *w.net, w.arena, device_config);
  DcppCpConfig cp_config;
  cp_config.continue_after_absence = true;
  DcppControlPoint cp(w.sim, *w.net, w.arena, device.id(), cp_config);
  cp.start();

  for (int round = 0; round < 4; ++round) {
    w.sim.run_until(w.sim.now() + 10.0);
    EXPECT_TRUE(cp.device_considered_present()) << "round " << round;
    device.go_silent();
    w.sim.run_until(w.sim.now() + 10.0);
    EXPECT_FALSE(cp.device_considered_present()) << "round " << round;
    device.come_back();
  }
  EXPECT_GT(cp.cycle().cycles_failed(), 0u);
  EXPECT_GT(cp.cycle().cycles_succeeded(), 100u);
}

TEST(Determinism, SameSeedSameTrajectory) {
  auto run = [](std::uint64_t seed) {
    des::Simulation sim(seed);
    EntityArena arena;
    auto net = net::Network::make_paper_default(sim.scheduler(), sim.rng());
    SappDevice device(sim, *net, arena, SappDeviceConfig{});
    SappControlPoint cp(sim, *net, arena, device.id(), SappCpConfig{});
    cp.start();
    sim.run_until(500.0);
    return std::make_tuple(device.probe_counter(),
                           cp.cycle().cycles_succeeded(), cp.delta());
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(124));
}

}  // namespace
}  // namespace probemon::core
