// Tests for util::LockOrderRegistry, the debug lock-order (deadlock)
// detector behind util::Mutex's PROBEMON_CHECKED acquisition hooks.
//
// Most tests drive the registry's public API directly with synthetic
// lock addresses so they run (and stay meaningful) in every build
// flavour; the final EXPECT_DEATH exercises the real util::Mutex hook
// path and is compiled only under PROBEMON_CHECKED.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "telemetry/bridges.hpp"
#include "telemetry/registry.hpp"
#include "util/lock_order.hpp"
#include "util/thread_annotations.hpp"

namespace probemon {
namespace {

using util::LockOrderRegistry;

// set_violation_handler takes a plain function pointer (it must be
// callable from inside lock acquisition with no allocation), so the
// capture state lives in file-level globals.
std::uint64_t g_reports = 0;
std::string g_last_diagnostic;

void capture_handler(const char* diagnostic) {
  ++g_reports;
  g_last_diagnostic = diagnostic;
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockOrderRegistry::instance().reset_graph_for_test();
    g_reports = 0;
    g_last_diagnostic.clear();
    prev_ = LockOrderRegistry::instance().set_violation_handler(
        capture_handler);
  }
  void TearDown() override {
    LockOrderRegistry::instance().set_violation_handler(prev_);
    LockOrderRegistry::instance().reset_graph_for_test();
  }

 private:
  LockOrderRegistry::ViolationHandler prev_ = nullptr;
};

TEST_F(LockOrderTest, ConsistentNestingIsSilent) {
  auto& reg = LockOrderRegistry::instance();
  int a = 0;
  int b = 0;
  for (int i = 0; i < 3; ++i) {
    reg.on_acquire(&a, "test.A");
    reg.on_acquire(&b, "test.B");
    reg.on_release(&b);
    reg.on_release(&a);
  }
  EXPECT_EQ(g_reports, 0u);
  EXPECT_EQ(reg.violations(), 0u);
}

TEST_F(LockOrderTest, AbbaReversalReportsBothLockNames) {
  auto& reg = LockOrderRegistry::instance();
  const std::uint64_t before = reg.violations();
  int a = 0;
  int b = 0;
  reg.on_acquire(&a, "test.Alpha");
  reg.on_acquire(&b, "test.Beta");
  reg.on_release(&b);
  reg.on_release(&a);
  // Reversed order: the check fires on acquisition, *before* the
  // thread would block, so the injected handler sees it immediately.
  reg.on_acquire(&b, "test.Beta");
  reg.on_acquire(&a, "test.Alpha");
  reg.on_release(&a);
  reg.on_release(&b);

  EXPECT_EQ(g_reports, 1u);
  EXPECT_EQ(reg.violations(), before + 1);
  EXPECT_NE(g_last_diagnostic.find("lock-order violation"),
            std::string::npos);
  EXPECT_NE(g_last_diagnostic.find("\"test.Alpha\""), std::string::npos);
  EXPECT_NE(g_last_diagnostic.find("\"test.Beta\""), std::string::npos);
}

TEST_F(LockOrderTest, TransitiveCycleThroughThirdLockIsDetected) {
  auto& reg = LockOrderRegistry::instance();
  int a = 0;
  int b = 0;
  int c = 0;
  // Record A -> B and B -> C.
  reg.on_acquire(&a, "test.A");
  reg.on_acquire(&b, "test.B");
  reg.on_release(&b);
  reg.on_release(&a);
  reg.on_acquire(&b, "test.B");
  reg.on_acquire(&c, "test.C");
  reg.on_release(&c);
  reg.on_release(&b);
  // C -> A closes a three-lock cycle even though A and C were never
  // held together before.
  reg.on_acquire(&c, "test.C");
  reg.on_acquire(&a, "test.A");
  reg.on_release(&a);
  reg.on_release(&c);

  EXPECT_EQ(g_reports, 1u);
  EXPECT_NE(g_last_diagnostic.find("\"test.A\""), std::string::npos);
  EXPECT_NE(g_last_diagnostic.find("\"test.C\""), std::string::npos);
}

TEST_F(LockOrderTest, TryLockAcquisitionsRecordNoOrderingEdges) {
  auto& reg = LockOrderRegistry::instance();
  int a = 0;
  int b = 0;
  // try_lock acquisitions cannot deadlock (they never block), so the
  // no-check hook must not record an A -> B edge...
  reg.on_acquire(&a, "test.A");
  reg.on_acquire_no_check(&b, "test.B");
  reg.on_release(&b);
  reg.on_release(&a);
  // ...which means the blocking B -> A nesting below is the *first*
  // ordering observed and must pass.
  reg.on_acquire(&b, "test.B");
  reg.on_acquire(&a, "test.A");
  reg.on_release(&a);
  reg.on_release(&b);
  EXPECT_EQ(g_reports, 0u);
}

TEST_F(LockOrderTest, DestroyPurgesEdgesSoReusedAddressStartsClean) {
  auto& reg = LockOrderRegistry::instance();
  int a = 0;
  int b = 0;
  reg.on_acquire(&a, "test.A");
  reg.on_acquire(&b, "test.B");
  reg.on_release(&b);
  reg.on_release(&a);
  // B dies; a new mutex at the same address must not inherit A -> B.
  reg.on_destroy(&b);
  reg.on_acquire(&b, "test.B2");
  reg.on_acquire(&a, "test.A");
  reg.on_release(&a);
  reg.on_release(&b);
  EXPECT_EQ(g_reports, 0u);
}

TEST_F(LockOrderTest, NonAbortingHandlerKeepsOriginalOrientation) {
  auto& reg = LockOrderRegistry::instance();
  int a = 0;
  int b = 0;
  reg.on_acquire(&a, "test.A");
  reg.on_acquire(&b, "test.B");
  reg.on_release(&b);
  reg.on_release(&a);
  // Two reversed nestings: the reversed edge is deliberately not
  // recorded after a report, so the second nesting re-reports instead
  // of being silently accepted as the new order.
  for (int i = 0; i < 2; ++i) {
    reg.on_acquire(&b, "test.B");
    reg.on_acquire(&a, "test.A");
    reg.on_release(&a);
    reg.on_release(&b);
  }
  EXPECT_EQ(g_reports, 2u);
}

TEST(LockOrderMetricTest, BridgeExportsViolationCounter) {
  telemetry::Registry reg;
  telemetry::instrument_lock_order(reg);
  bool found = false;
  for (const auto& sample : reg.snapshot()) {
    if (sample.name == "probemon_lock_order_violations_total") {
      found = true;
      EXPECT_EQ(sample.value,
                static_cast<double>(
                    LockOrderRegistry::instance().violations()));
    }
  }
  EXPECT_TRUE(found);
}

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderDeathTest, DefaultHandlerAbortsNamingBothLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto& reg = LockOrderRegistry::instance();
        reg.set_violation_handler(nullptr);  // restore the abort handler
        int a = 0;
        int b = 0;
        reg.on_acquire(&a, "death.Alpha");
        reg.on_acquire(&b, "death.Beta");
        reg.on_release(&b);
        reg.on_release(&a);
        reg.on_acquire(&b, "death.Beta");
        reg.on_acquire(&a, "death.Alpha");
      },
      "lock-order violation.*\"death\\.Alpha\".*\"death\\.Beta\"");
}

#ifdef PROBEMON_CHECKED
// End-to-end through the real hooks: two util::Mutex locked ABBA must
// abort on the second nesting's inner acquisition, naming both locks.
TEST_F(LockOrderDeathTest, CheckedMutexAbbaAbortsNamingBothLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        LockOrderRegistry::instance().set_violation_handler(nullptr);
        util::Mutex a("checked.First");
        util::Mutex b("checked.Second");
        {
          util::MutexLock hold_a(a);
          util::MutexLock hold_b(b);
        }
        util::MutexLock hold_b(b);
        util::MutexLock hold_a(a);  // reversal: aborts here
      },
      "lock-order violation.*\"checked\\.First\".*\"checked\\.Second\"");
}

// The real hooks must also stay silent for consistently ordered code.
TEST_F(LockOrderTest, CheckedMutexConsistentNestingIsSilent) {
  util::Mutex a("checked.Outer");
  util::Mutex b("checked.Inner");
  for (int i = 0; i < 3; ++i) {
    util::MutexLock hold_a(a);
    util::MutexLock hold_b(b);
  }
  EXPECT_EQ(g_reports, 0u);
}
#endif  // PROBEMON_CHECKED

}  // namespace
}  // namespace probemon
