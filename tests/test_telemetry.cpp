// Tests for the telemetry subsystem: metric primitives under
// concurrency, registry semantics, exporter golden output, the probe
// cycle tracer, and the PresenceService instrumentation agreeing with
// its own Stats.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "telemetry/bridges.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metric.hpp"
#include "telemetry/observer_adapter.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace probemon::telemetry {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- metrics

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Gauge, ConcurrentAddsSumExactly) {
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
}

TEST(Histogram, BucketBoundariesFollowLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1.0 -> bucket 0
  h.observe(1.0);  // exactly at the bound -> still bucket 0 (le)
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // above the last bound -> +Inf bucket
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(Histogram, ConcurrentObservationsCountExactly) {
  Histogram h(Histogram::linear_buckets(0.0, 1.0, 10));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>((t + i) % 12));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) bucket_total += h.bucket(i);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketHelpers) {
  EXPECT_EQ(Histogram::linear_buckets(0.0, 0.5, 3),
            (std::vector<double>{0.0, 0.5, 1.0}));
  EXPECT_EQ(Histogram::exponential_buckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

// --------------------------------------------------------------- registry

TEST(Registry, FindOrCreateReturnsSameInstance) {
  Registry registry;
  auto& a = registry.counter("probemon_test_total", "help");
  auto& b = registry.counter("probemon_test_total", "help");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, LabelsDistinguishInstances) {
  Registry registry;
  auto& a = registry.counter("probemon_test_total", "", {{"device", "1"}});
  auto& b = registry.counter("probemon_test_total", "", {{"device", "2"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, TypeConflictThrows) {
  Registry registry;
  registry.counter("probemon_test_total");
  EXPECT_THROW(registry.gauge("probemon_test_total"), std::logic_error);
}

TEST(Registry, InvalidNamesAndLabelsThrow) {
  Registry registry;
  EXPECT_THROW(registry.counter("0starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW(registry.counter("ok_name", "", {{"bad-label", "v"}}),
               std::invalid_argument);
}

TEST(Registry, ConcurrentRegistrationAndIncrementSumExactly) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the same metric, then hammers it.
      auto& counter = registry.counter("probemon_shared_total", "help");
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].value,
                   static_cast<double>(kThreads * kPerThread));
}

TEST(Registry, CallbackMetricsEvaluateAtSnapshot) {
  Registry registry;
  double load = 1.5;
  registry.gauge_callback("probemon_test_load", [&load] { return load; });
  EXPECT_DOUBLE_EQ(registry.snapshot()[0].value, 1.5);
  load = 7.25;
  EXPECT_DOUBLE_EQ(registry.snapshot()[0].value, 7.25);
}

TEST(Registry, RemoveDropsTheInstance) {
  Registry registry;
  registry.counter("probemon_test_total", "", {{"device", "1"}});
  EXPECT_TRUE(registry.remove("probemon_test_total", {{"device", "1"}}));
  EXPECT_FALSE(registry.remove("probemon_test_total", {{"device", "1"}}));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, SnapshotSortsByNameThenLabels) {
  Registry registry;
  registry.counter("probemon_b_total");
  registry.counter("probemon_a_total", "", {{"device", "2"}});
  registry.counter("probemon_a_total", "", {{"device", "1"}});
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "probemon_a_total");
  EXPECT_EQ(samples[0].labels[0].second, "1");
  EXPECT_EQ(samples[1].labels[0].second, "2");
  EXPECT_EQ(samples[2].name, "probemon_b_total");
}

TEST(Registry, MergeFromAddsCountersSetsGaugesAndMergesHistograms) {
  Registry into;
  into.counter("probemon_probes_total").inc(10);
  into.histogram("probemon_delay_seconds", {1.0, 2.0}).observe(0.5);

  Registry other;
  other.counter("probemon_probes_total").inc(5);
  other.counter("probemon_replies_total").inc(3);  // new to `into`
  other.gauge("probemon_load").set(4.5);
  auto& hist = other.histogram("probemon_delay_seconds", {1.0, 2.0});
  hist.observe(1.5);
  hist.observe(9.0);

  into.merge_from(other);
  const auto samples = into.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // snapshot sorts by name: delay, load, probes, replies.
  EXPECT_EQ(samples[0].name, "probemon_delay_seconds");
  EXPECT_EQ(samples[0].count, 3u);
  EXPECT_EQ(samples[0].buckets, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(samples[0].sum, 11.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 4.5);
  EXPECT_DOUBLE_EQ(samples[2].value, 15.0);
  EXPECT_DOUBLE_EQ(samples[3].value, 3.0);
  // The source is untouched.
  EXPECT_EQ(other.snapshot()[2].value, 5.0);
}

TEST(Registry, MergeFromSkipsCallbacksAndRejectsConflicts) {
  Registry into;
  Registry other;
  other.gauge_callback("probemon_cb", [] { return 1.0; });
  into.merge_from(other);
  EXPECT_EQ(into.size(), 0u);  // callback captures stay with the source

  other.counter("probemon_kind");
  into.gauge("probemon_kind");
  EXPECT_THROW(into.merge_from(other), std::logic_error);

  // Self-merge is an explicit no-op (doubling values would be worse).
  into.counter("probemon_self_total").inc(2);
  into.merge_from(into);
  EXPECT_EQ(into.counter("probemon_self_total").value(), 2u);
}

TEST(Registry, MergeFromIsExactForLargeCounterValues) {
  // Counter merges must go through the u64 value, not a double round
  // trip: 2^53 + 1 is not representable as a double.
  Registry into;
  Registry other;
  const std::uint64_t big = (1ULL << 53) + 1;
  other.counter("probemon_big_total").inc(big);
  into.merge_from(other);
  EXPECT_EQ(into.counter("probemon_big_total").value(), big);
}

// -------------------------------------------------------------- exporters

TEST(Exporters, PrometheusGoldenOutput) {
  Registry registry;
  registry.counter("probemon_probes_total", "Probes sent", {{"device", "7"}})
      .inc(42);
  registry.gauge("probemon_load", "Device load").set(9.5);
  auto& h = registry.histogram("probemon_rtt_seconds", {0.25, 2.0},
                               "Round trip time");
  h.observe(0.125);  // exact binary fractions: the _sum line stays clean
  h.observe(0.125);
  h.observe(4.0);

  const std::string expected =
      "# HELP probemon_load Device load\n"
      "# TYPE probemon_load gauge\n"
      "probemon_load 9.5\n"
      "# HELP probemon_probes_total Probes sent\n"
      "# TYPE probemon_probes_total counter\n"
      "probemon_probes_total{device=\"7\"} 42\n"
      "# HELP probemon_rtt_seconds Round trip time\n"
      "# TYPE probemon_rtt_seconds histogram\n"
      "probemon_rtt_seconds_bucket{le=\"0.25\"} 2\n"
      "probemon_rtt_seconds_bucket{le=\"2\"} 2\n"
      "probemon_rtt_seconds_bucket{le=\"+Inf\"} 3\n"
      "probemon_rtt_seconds_sum 4.25\n"
      "probemon_rtt_seconds_count 3\n";
  EXPECT_EQ(to_prometheus(registry), expected);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
  Registry registry;
  registry.counter("probemon_test_total", "", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(Exporters, JsonGoldenOutput) {
  Registry registry;
  registry.counter("probemon_probes_total", "Probes", {{"device", "7"}})
      .inc(3);
  auto& h = registry.histogram("probemon_rtt_seconds", {0.5});
  h.observe(0.25);
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"probemon_probes_total\",\"type\":\"counter\","
      "\"help\":\"Probes\","
      "\"labels\":{\"device\":\"7\"},\"value\":3},"
      "{\"name\":\"probemon_rtt_seconds\",\"type\":\"histogram\","
      "\"count\":1,\"sum\":0.25,\"bounds\":[0.5],\"buckets\":[1,0]}"
      "]}";
  EXPECT_EQ(to_json(registry), expected);
}

TEST(Exporters, RenderHumanIncludesEveryInstance) {
  Registry registry;
  registry.counter("probemon_a_total").inc(5);
  registry.gauge("probemon_b").set(1.25);
  const std::string text = render_human(registry);
  EXPECT_NE(text.find("probemon_a_total"), std::string::npos);
  EXPECT_NE(text.find('5'), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
}

TEST(Exporters, PeriodicReporterLogsSnapshots) {
  Registry registry;
  registry.counter("probemon_tick_total").inc();
  std::atomic<int> logged{0};
  auto previous_level = util::Logger::instance().level();
  util::Logger::instance().set_level(util::LogLevel::kInfo);
  auto previous =
      util::Logger::instance().set_sink([&logged](util::LogLevel,
                                                  const std::string& msg) {
        if (msg.find("probemon_tick_total") != std::string::npos) ++logged;
      });
  {
    PeriodicReporter reporter(registry, 0.02);
    reporter.start();
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (logged == 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(5ms);
    }
  }  // destructor stops the thread
  util::Logger::instance().set_sink(std::move(previous));
  util::Logger::instance().set_level(previous_level);
  EXPECT_GE(logged, 1);
}

// ----------------------------------------------------------------- tracer

TEST(ProbeCycleTracer, KeepsMostRecentInOrder) {
  ProbeCycleTracer tracer(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ProbeCycleTrace trace;
    trace.cp = 1;
    trace.device = 2;
    trace.cycle = i;
    trace.success = true;
    tracer.record(trace);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  const auto kept = tracer.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().cycle, 6u);  // oldest retained
  EXPECT_EQ(kept.back().cycle, 9u);   // newest
}

TEST(ProbeCycleTracer, ToJsonIsWellFormedArray) {
  ProbeCycleTracer tracer(8);
  ProbeCycleTrace trace;
  trace.cp = 3;
  trace.device = 4;
  trace.attempts = 2;
  trace.rtt = 0.004;
  trace.success = true;
  tracer.record(trace);
  const std::string json = tracer.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"success\":true"), std::string::npos);
}

TEST(ProbeCycleTracer, ToChromeTraceHasPerfettoStructure) {
  ProbeCycleTracer tracer(8);
  ProbeCycleTrace trace;
  trace.cp = 7;
  trace.device = 3;
  trace.cycle = 1;
  trace.start = 2.0;
  trace.end = 2.5;
  trace.attempts = 3;
  trace.success = false;
  trace.sends = {2.0, 2.1, 2.2};
  tracer.record(trace);

  const std::string chrome = tracer.to_chrome_trace();
  // What Perfetto / chrome://tracing needs: a traceEvents array of
  // objects carrying ph, ts and pid.
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);  // cycle span
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);  // send marks
  EXPECT_NE(chrome.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(chrome.find("\"tid\":7"), std::string::npos);
  // 2.0 s -> 2000000 us start, 0.5 s -> 500000 us duration.
  EXPECT_NE(chrome.find("\"ts\":2000000"), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\":500000"), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"absence declared\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"retransmission\""), std::string::npos);
}

// CycleTraceObserver reassembles DES observer callbacks into cycle
// traces; drive the hooks directly (the DES calls them the same way).
TEST(CycleTraceObserver, ReassemblesCyclesFromObserverEvents) {
  ProbeCycleTracer tracer(16);
  CycleTraceObserver observer(tracer);

  // Cycle 1 on CP 10: first probe answered -- one attempt, success.
  observer.on_probe_sent(10, 20, 1.00, 0);
  EXPECT_EQ(observer.open_cycles(), 1u);
  observer.on_cycle_success(10, 20, 1.01, 1);
  EXPECT_EQ(observer.open_cycles(), 0u);

  // Cycle 2: two retransmissions, then success.
  observer.on_probe_sent(10, 20, 2.00, 0);
  observer.on_probe_sent(10, 20, 2.02, 1);
  observer.on_probe_sent(10, 20, 2.04, 2);
  observer.on_cycle_success(10, 20, 2.05, 3);

  // A different CP declares its device absent.
  observer.on_probe_sent(11, 21, 3.00, 0);
  observer.on_probe_sent(11, 21, 3.02, 1);
  observer.on_device_declared_absent(11, 21, 3.05);

  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 3u);

  EXPECT_EQ(traces[0].cp, 10u);
  EXPECT_EQ(traces[0].cycle, 1u);
  EXPECT_EQ(traces[0].attempts, 1u);
  EXPECT_TRUE(traces[0].success);
  EXPECT_NEAR(traces[0].rtt, 0.01, 1e-12);
  ASSERT_EQ(traces[0].sends.size(), 1u);

  EXPECT_EQ(traces[1].cycle, 2u);  // per-CP cycle numbering
  EXPECT_EQ(traces[1].attempts, 3u);
  ASSERT_EQ(traces[1].sends.size(), 3u);
  EXPECT_DOUBLE_EQ(traces[1].sends[2], 2.04);
  // RTT is measured from the send that was answered.
  EXPECT_NEAR(traces[1].rtt, 0.01, 1e-12);

  EXPECT_EQ(traces[2].cp, 11u);
  EXPECT_EQ(traces[2].cycle, 1u);
  EXPECT_FALSE(traces[2].success);
  EXPECT_EQ(traces[2].attempts, 2u);
  EXPECT_DOUBLE_EQ(traces[2].end, 3.05);
}

TEST(Exporters, PeriodicReporterWritesSnapshotFile) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "probemon_snapshot_test";
  fs::create_directories(dir);
  const fs::path path = dir / "metrics.prom";
  fs::remove(path);

  Registry registry;
  registry.counter("probemon_snapshot_total", "A snapshot counter").inc(3);
  {
    PeriodicReporter reporter(registry, 0.02);
    reporter.set_snapshot_file(path.string());
    reporter.start();
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (!fs::exists(path) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(5ms);
    }
    reporter.stop();  // also writes a final snapshot
  }
  ASSERT_TRUE(fs::exists(path));
  std::ifstream in(path);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  // The file is the Prometheus exposition, written atomically.
  EXPECT_NE(contents.find("# TYPE probemon_snapshot_total counter"),
            std::string::npos);
  EXPECT_NE(contents.find("probemon_snapshot_total 3"), std::string::npos);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  fs::remove_all(dir);
}

// ------------------------------------------------- end-to-end (runtime)

struct RuntimeFixture {
  runtime::InProcTransport transport;
  core::DcppDeviceConfig device_config;
  core::DcppCpConfig cp_config;

  RuntimeFixture() : transport(fast_net()) {
    device_config.delta_min = 0.005;
    device_config.d_min = 0.02;
    cp_config.timeouts.tof = 0.020;
    cp_config.timeouts.tos = 0.015;
  }

  static runtime::InProcTransportConfig fast_net() {
    runtime::InProcTransportConfig config;
    config.delay_min = 0.0001;
    config.delay_max = 0.0005;
    return config;
  }
};

double sample_value(const std::vector<Sample>& samples,
                    const std::string& name, const Labels& labels = {}) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  return -1.0;
}

TEST(PresenceServiceTelemetry, CountersMatchStats) {
  RuntimeFixture f;
  Registry registry;
  ProbeCycleTracer tracer(256);
  runtime::RtDcppDevice device(f.transport, f.device_config);

  runtime::PresenceService::TelemetryOptions wiring;
  wiring.registry = &registry;
  wiring.tracer = &tracer;
  runtime::PresenceService service(f.transport, wiring);

  std::atomic<int> absent_events{0};
  service.subscribe([&](const runtime::PresenceEvent& event) {
    if (event.state == runtime::Presence::kAbsent) ++absent_events;
  });

  service.watch_dcpp(device.id(), f.cp_config);
  std::this_thread::sleep_for(150ms);
  device.go_silent();
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (absent_events == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(absent_events, 1);

  const auto stats = service.stats();
  const auto samples = registry.snapshot();
  const Labels device_label = {{"device", std::to_string(device.id())}};

  EXPECT_DOUBLE_EQ(
      sample_value(samples, "probemon_watch_probes_sent_total", device_label),
      static_cast<double>(stats.probes_sent));
  EXPECT_DOUBLE_EQ(sample_value(samples, "probemon_watch_cycles_total",
                                {{"result", "success"}}),
                   static_cast<double>(stats.cycles_succeeded));
  EXPECT_DOUBLE_EQ(sample_value(samples, "probemon_watch_cycles_total",
                                {{"result", "failure"}}),
                   static_cast<double>(stats.cycles_failed));
  EXPECT_DOUBLE_EQ(sample_value(samples, "probemon_presence_transitions_total",
                                {{"state", "present"}}),
                   1.0);
  EXPECT_DOUBLE_EQ(sample_value(samples, "probemon_presence_transitions_total",
                                {{"state", "absent"}}),
                   1.0);
  EXPECT_DOUBLE_EQ(sample_value(samples, "probemon_watches"), 1.0);

  // RTT histogram observed every successful cycle.
  for (const auto& s : samples) {
    if (s.name == "probemon_watch_rtt_seconds" && s.labels == device_label) {
      EXPECT_EQ(s.count, stats.cycles_succeeded);
    }
  }

  // The tracer saw the same cycles the counters did.
  std::uint64_t traced_success = 0, traced_failure = 0;
  for (const auto& trace : tracer.snapshot()) {
    (trace.success ? traced_success : traced_failure) += 1;
  }
  EXPECT_EQ(traced_success, stats.cycles_succeeded);
  EXPECT_EQ(traced_failure, stats.cycles_failed);
}

TEST(TransportTelemetry, InprocCountersTrackTransportTallies) {
  RuntimeFixture f;
  Registry registry;
  f.transport.instrument(registry);
  runtime::RtDcppDevice device(f.transport, f.device_config);
  device.instrument(registry);
  runtime::PresenceService service(f.transport);
  service.watch_dcpp(device.id(), f.cp_config);
  std::this_thread::sleep_for(200ms);
  service.unwatch(device.id());

  const auto samples = registry.snapshot();
  const Labels transport_label = {{"transport", "inproc"}};
  const double sent = sample_value(
      samples, "probemon_transport_datagrams_sent_total", transport_label);
  const double delivered = sample_value(
      samples, "probemon_transport_datagrams_delivered_total",
      transport_label);
  EXPECT_GT(sent, 0.0);
  EXPECT_GT(delivered, 0.0);
  EXPECT_LE(delivered, sent);

  // Device-side gauges: nominal load is config-derived, experienced load
  // was sampled from real probe arrivals.
  const Labels device_label = {{"device", std::to_string(device.id())}};
  EXPECT_DOUBLE_EQ(
      sample_value(samples, "probemon_device_nominal_load", device_label),
      f.device_config.l_nom());
  EXPECT_GT(sample_value(samples, "probemon_device_probes_received_total",
                         device_label),
            0.0);
}

TEST(SchedulerTelemetry, BridgeBindsEventCounters) {
  Registry registry;
  des::Simulation sim(1);
  instrument_simulation(registry, sim);
  std::uint64_t fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.after(0.01 * i, [&fired] { ++fired; });
  }
  sim.run_all();
  const auto samples = registry.snapshot();
  EXPECT_DOUBLE_EQ(
      sample_value(samples, "probemon_des_events_executed_total"), 100.0);
  EXPECT_DOUBLE_EQ(sample_value(samples, "probemon_des_queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(sample_value(samples, "probemon_des_queue_high_water"),
                   100.0);
  EXPECT_GT(sample_value(samples, "probemon_des_sim_time_seconds"), 0.0);
}

// ---------------------------------------------------------------- logging

TEST(LoggingSinks, TimestampHasWallClockShape) {
  const std::string ts = util::log_timestamp();
  // "YYYY-MM-DDTHH:MM:SS.mmm"
  ASSERT_EQ(ts.size(), 23u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[19], '.');
}

TEST(LoggingSinks, JsonSinkEmitsOneObjectPerLine) {
  std::ostringstream out;
  auto sink = util::make_json_sink(out);
  sink(util::LogLevel::kWarn, "hello \"quoted\"\nworld");
  const std::string line = out.str();
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"level\":\"WARN\""), std::string::npos);
  EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // no raw newlines inside
}

TEST(LoggingSinks, LevelChangesAreSafeFromOtherThreads) {
  auto& logger = util::Logger::instance();
  const auto previous = logger.level();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load()) {
      logger.set_level(util::LogLevel::kDebug);
      logger.set_level(util::LogLevel::kError);
    }
  });
  for (int i = 0; i < 100000; ++i) {
    const auto level = logger.level();
    EXPECT_TRUE(level == util::LogLevel::kDebug ||
                level == util::LogLevel::kError ||
                level == previous);
  }
  stop = true;
  toggler.join();
  logger.set_level(previous);
}

// ------------------------------------------------- remove/merge hygiene

TEST(Registry, RemoveThenMergeDoesNotResurrectStaleHelpOrType) {
  Registry src;
  src.counter("probemon_m_total", "merge help").inc(3);

  Registry dst;
  dst.merge_from(src);
  ASSERT_TRUE(dst.remove("probemon_m_total"));
  // After a remove, the slate is clean: re-registering with another
  // type must not trip the type-conflict check...
  dst.gauge("probemon_m_total", "now a gauge").set(1.0);
  ASSERT_TRUE(dst.remove("probemon_m_total"));
  // ...and an explicit help must survive later merges instead of being
  // clobbered by the stale merge-inherited text.
  dst.counter("probemon_m_total", "explicit help");
  dst.merge_from(src);
  const auto samples = dst.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].help, "explicit help");
  EXPECT_EQ(samples[0].value, 3.0);
}

TEST(Histogram, MergeFromRejectsMismatchedBucketBounds) {
  Histogram a({0.1, 1.0});
  Histogram b({0.1, 2.0});
  a.observe(0.5);
  b.observe(0.5);
  EXPECT_THROW(a.merge_from(b), std::logic_error);
  Histogram fewer({0.1});
  EXPECT_THROW(a.merge_from(fewer), std::logic_error);
  // Matching bounds still merge.
  Histogram c({0.1, 1.0});
  c.observe(10.0);
  a.merge_from(c);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, ResetToOverwritesAndValidates) {
  Histogram h({0.1, 1.0});
  h.observe(0.05);
  EXPECT_THROW(h.reset_to({1, 2}, 3, 1.0), std::invalid_argument);
  h.reset_to({4, 5, 6}, 15, 7.5);  // bounds.size()+1 buckets
  EXPECT_EQ(h.count(), 15u);
  EXPECT_EQ(h.sum(), 7.5);
  EXPECT_EQ(h.bucket(0), 4u);
  EXPECT_EQ(h.bucket(1), 5u);
  EXPECT_EQ(h.bucket(2), 6u);
}

TEST(Counter, ResetOverwritesForIngestion) {
  Counter c;
  c.inc(41);
  c.reset(7);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

// ----------------------------------------------------- delta exporters

TEST(DeltaExporter, EachFormatKeepsItsOwnCursor) {
  Registry reg;
  auto& c = reg.counter("probemon_a_total", "A");
  c.inc(1);
  DeltaExporter exporter(reg);

  // First scrape of each format is full; a quiet follow-up is empty.
  EXPECT_EQ(exporter.prometheus(), to_prometheus(reg));
  EXPECT_EQ(exporter.prometheus(), "");
  // The JSON cursor is independent of the Prometheus one.
  EXPECT_EQ(exporter.json(), to_json(reg));
  EXPECT_EQ(exporter.json(), samples_to_json({}));

  c.inc(1);
  const std::string delta = exporter.prometheus();
  EXPECT_NE(delta.find("probemon_a_total 2"), std::string::npos);
  // full=true bypasses the cursor without losing it.
  EXPECT_EQ(exporter.prometheus(true), to_prometheus(reg));
  EXPECT_EQ(exporter.prometheus(), "");
}

TEST(Registry, SnapshotOrderingIsStableUnderConcurrentRegistration) {
  Registry reg;
  std::atomic<bool> stop{false};
  std::thread registrar([&reg, &stop] {
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      reg.counter("probemon_conc_total", "", {{"i", std::to_string(i)}})
          .inc();
    }
  });
  // Snapshots taken while registration races must stay sorted by the
  // deterministic (name, labels) key — the exposition contract.
  for (int round = 0; round < 50; ++round) {
    const auto snap = reg.snapshot();
    for (std::size_t i = 1; i < snap.size(); ++i) {
      ASSERT_LT(detail::make_key(snap[i - 1].name, snap[i - 1].labels),
                detail::make_key(snap[i].name, snap[i].labels));
    }
  }
  stop = true;
  registrar.join();
}

}  // namespace
}  // namespace probemon::telemetry
