// Trace recording and offline replay — run an expensive scenario once,
// persist the protocol event log, then re-analyze it with different
// metric settings without re-simulating.
#include <filesystem>
#include <iostream>

#include "scenario/experiment.hpp"
#include "trace/event_log.hpp"
#include "trace/table.hpp"

using namespace probemon;

int main() {
  const std::string log_path = "trace_replay_events.log";

  // --- 1. Record a run ------------------------------------------------------
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = 42;
  config.initial_cps = 10;
  scenario::Experiment exp(config);
  trace::EventLog log;
  exp.add_observer(log);
  exp.run_until(2000.0);
  exp.finish();
  log.save_file(log_path);
  std::cout << "recorded " << log.size() << " protocol events to " << log_path
            << " (" << std::filesystem::file_size(log_path) / 1024
            << " KiB)\n";

  // --- 2. Reload and re-analyze with different windows ----------------------
  const trace::EventLog reloaded = trace::EventLog::load_file(log_path);
  std::cout << "reloaded " << reloaded.size() << " events ("
            << reloaded.count(trace::EventKind::kProbeSent) << " probes sent, "
            << reloaded.count(trace::EventKind::kCycleSuccess)
            << " successful cycles)\n\n";

  trace::Table table({"analysis warmup (s)", "#CPs with samples",
                      "mean of per-CP mean delays", "Jain fairness"});
  for (double warmup : {0.0, 500.0, 1000.0, 1500.0}) {
    scenario::MetricsConfig metrics_config;
    metrics_config.warmup = warmup;
    metrics_config.record_delay_series = false;
    scenario::Metrics metrics(metrics_config);
    reloaded.replay(metrics);

    const auto delays = metrics.mean_delays();
    double mean = 0;
    for (double d : delays) mean += d;
    if (!delays.empty()) mean /= static_cast<double>(delays.size());
    table.row()
        .cell(warmup, 0)
        .cell(static_cast<std::uint64_t>(delays.size()))
        .cell(mean, 3)
        .cell(metrics.frequency_fairness(), 3);
  }
  table.print(std::cout);
  std::cout << "\nSame run, four analysis windows, zero re-simulation: the "
               "later the warmup cutoff, the more the means reflect the "
               "starved steady state instead of the transient.\n";
  std::filesystem::remove(log_path);
  return 0;
}
