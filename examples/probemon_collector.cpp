// probemon_collector — fleet telemetry aggregation, end to end.
//
// Spins up one collector (HttpServer + MetricsCollector) and a handful
// of in-process "agents", each owning a private ShardedRegistry of
// per-device presence metrics and a MetricsPusher. Every agent round
// simulates some probe activity and pushes a report to the collector's
// /push route — full absolute state on the first report, O(changed)
// deltas afterwards. The collector folds everything into one merged
// ShardedRegistry with an "agent" label per series, scraped here the
// same way Prometheus would: first /metrics scrape full, the next one
// a delta (empty once the fleet goes quiet).
//
// The collector also watches the agents themselves: each push feeds a
// per-agent SAPP adaptation whose delta is that agent's staleness
// deadline. node-0 deliberately stops pushing halfway through, so by
// the time the fleet finishes it has blown its deadline: the
// `agent_absent` alert fires for it (and only it), and
// /agents?state=absent lists it.
//
// Wall-clock runtime: about a second at the defaults. Pass --linger=N
// to keep the collector serving for N seconds so you can curl the
// routes yourself:
//
//   ./probemon_collector --agents=8 --rounds=10 --linger=30
//   curl "localhost:<port>/agents?state=absent"
//   curl "localhost:<port>/metrics?full=1"
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/metrics_push.hpp"
#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/bridges.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/sharded_registry.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

/// One simulated agent: a node whose runtime would own these metrics.
/// Registration uses the interned-id API once at setup; rounds only
/// touch the returned references (the hot-path pattern).
struct Agent {
  std::string name;
  telemetry::ShardedRegistry registry{4};
  std::vector<telemetry::Counter*> probes;
  std::vector<telemetry::Gauge*> rtt;
  telemetry::Histogram* cycle_rtt = nullptr;

  Agent(std::string id, std::uint64_t devices) : name(std::move(id)) {
    const auto probes_name =
        registry.intern_name("probemon_agent_probes_total");
    const auto rtt_name = registry.intern_name("probemon_agent_last_rtt");
    const auto device_key = registry.intern_label_name("device");
    const auto help =
        registry.intern("Probes sent by this agent's control point");
    for (std::uint64_t d = 0; d < devices; ++d) {
      const telemetry::LabelIds labels{
          {device_key, registry.intern(std::to_string(d))}};
      probes.push_back(&registry.counter_ids(probes_name, labels, help));
      rtt.push_back(&registry.gauge_ids(rtt_name, labels));
    }
    cycle_rtt = &registry.histogram(
        "probemon_agent_cycle_rtt_seconds",
        telemetry::Histogram::exponential_buckets(0.001, 4.0, 6),
        "Probe cycle round-trip time");
  }

  /// Simulate one activity round: a deterministic walk so agents
  /// differ without pulling in an RNG.
  void round(std::uint64_t r) {
    for (std::size_t d = 0; d < probes.size(); ++d) {
      if ((r + d) % 3 == 0) continue;  // this device stayed quiet
      probes[d]->inc(1 + (r + d) % 4);
      const double rtt_s = 0.001 * static_cast<double>(1 + (r * 7 + d) % 50);
      rtt[d]->set(rtt_s);
      cycle_rtt->observe(rtt_s);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto agents_n = cli.get<std::uint64_t>("agents", 4);
  const auto devices = cli.get<std::uint64_t>("devices", 8);
  const auto rounds = cli.get<std::uint64_t>("rounds", 10);
  const auto period_s = cli.get<double>("period", 0.05);
  const auto linger_s = cli.get<double>("linger", 0.0);
  cli.finish("probemon_collector: agents push metric deltas to a collector");

  // --- collector side ------------------------------------------------
  // Presence tuned to the push cadence: deadlines adapt within
  // [3, 20] periods of the expected gap, so a stalled agent is flagged
  // well before the demo ends while healthy ones never are.
  runtime::CollectorPresenceConfig presence;
  presence.expected_period_s = period_s;
  presence.deadline_min_s = 3 * period_s;
  presence.deadline_initial_s = 5 * period_s;
  presence.deadline_max_s = 20 * period_s;
  runtime::MetricsCollector collector(
      telemetry::ShardedRegistry::kDefaultShards, presence);
  telemetry::AlertEngine alerts;
  collector.attach_alert_engine(alerts);
  telemetry::HttpServer server({.port = 0});
  runtime::register_collector_routes(server, collector);
  telemetry::register_metrics_routes(server, collector.merged());
  telemetry::instrument_lock_order(collector.self_metrics());
  server.start();
  std::printf("collector listening on 127.0.0.1:%u (POST /push, GET "
              "/agents /metrics /metrics.json)\n",
              server.port());

  // --- agent side ----------------------------------------------------
  // node-0 stalls after rounds/3 pushes; everyone else keeps the
  // cadence to the end.
  std::vector<std::thread> threads;
  threads.reserve(agents_n);
  for (std::uint64_t a = 0; a < agents_n; ++a) {
    threads.emplace_back([a, devices, rounds, period_s,
                          port = server.port()] {
      Agent agent("node-" + std::to_string(a), devices);
      runtime::MetricsPusher::Config push;
      push.port = port;
      push.agent = agent.name;
      runtime::MetricsPusher pusher(agent.registry, push);
      const std::uint64_t stall_after = a == 0 ? 1 + rounds / 3 : rounds;
      for (std::uint64_t r = 0; r < stall_after; ++r) {
        agent.round(r);
        pusher.push_once();  // full on r==0, delta afterwards
        std::this_thread::sleep_for(std::chrono::duration<double>(period_s));
      }
      std::printf("  %s: %llu reports ok, %llu failed, %llu skipped%s\n",
                  agent.name.c_str(),
                  static_cast<unsigned long long>(pusher.pushes_ok()),
                  static_cast<unsigned long long>(pusher.pushes_failed()),
                  static_cast<unsigned long long>(pusher.pushes_skipped()),
                  stall_after < rounds ? "  (stalled on purpose)" : "");
    });
  }
  for (std::thread& t : threads) t.join();

  // --- presence side -------------------------------------------------
  const std::size_t absent_now = collector.update_presence();
  std::printf("\n%zu of %zu agents past their adaptive deadline\n",
              absent_now, collector.agent_count());
  for (const auto& p : collector.agent_presence()) {
    std::printf("  %-8s %-6s staleness %.3fs deadline %.3fs (%llu reports)\n",
                p.agent.c_str(), p.absent ? "ABSENT" : "ok", p.staleness_s,
                p.deadline_s, static_cast<unsigned long long>(p.reports));
  }
  const auto absent_doc = telemetry::http_get(
      "127.0.0.1", server.port(), "/agents?state=absent");
  std::printf("\n/agents?state=absent -> %s\n", absent_doc.body.c_str());
  std::printf("firing alerts -> %s\n",
              telemetry::alerts_to_json(alerts, "firing").c_str());

  const auto first = telemetry::http_get("127.0.0.1", server.port(),
                                         "/metrics");
  const auto quiet = telemetry::http_get("127.0.0.1", server.port(),
                                         "/metrics");
  std::printf("merged series: %zu across %zu agents\n",
              collector.merged().size(), collector.agent_count());
  std::printf("first /metrics scrape: %zu bytes (full — new scraper)\n",
              first.body.size());
  std::printf("next  /metrics scrape: %zu bytes (delta — fleet quiet)\n",
              quiet.body.size());

  std::string sample = first.body.substr(0, first.body.find('\n', 400));
  std::printf("\nexposition head:\n%.*s...\n",
              static_cast<int>(sample.size()), sample.c_str());

  if (linger_s > 0) {
    std::printf("\nlingering %.0fs — scrape me: curl 127.0.0.1:%u/metrics"
                "?full=1\n",
                linger_s, server.port());
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  server.stop();
  return 0;
}
