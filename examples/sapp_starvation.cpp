// SAPP starvation demo — watch the unfairness the paper diagnoses
// develop live: three CPs start identically; within minutes one of them
// is pinned at delta_max while the others oscillate.
//
// This is the scenario of paper Fig 2, narrated.
#include <iomanip>
#include <iostream>

#include "core/probemon.hpp"
#include "util/strings.hpp"

using namespace probemon;

int main() {
  des::Simulation sim(/*seed=*/3);
  auto network = net::Network::make_paper_default(sim.scheduler(), sim.rng());

  core::EntityArena arena;
  core::SappDevice device(sim, *network, arena, core::SappDeviceConfig{});
  std::vector<std::unique_ptr<core::SappControlPoint>> cps;
  for (int i = 0; i < 3; ++i) {
    cps.push_back(std::make_unique<core::SappControlPoint>(
        sim, *network, arena, device.id(), core::SappCpConfig{}));
    cps.back()->start();
  }

  std::cout << "SAPP, 1 device (L_nom = 10), 3 CPs. Optimal per-CP "
               "frequency: L_nom/k = 3.33 1/s.\n";
  std::cout << "t(s)      cp1 1/delta   cp2 1/delta   cp3 1/delta\n";

  auto report = sim.every(300.0, [&](double t) {
    std::cout << util::pad_left(util::format_fixed(t, 0), 5);
    for (const auto& cp : cps) {
      const double d = cp->delta();
      std::cout << util::pad_left(util::format_fixed(1.0 / d, 3), 14);
    }
    std::cout << '\n';
  });

  sim.run_until(6000.0);

  std::cout << "\nFinal inter-cycle delays (delta_max = "
            << cps[0]->config().delta_max << " means starved):\n";
  for (std::size_t i = 0; i < cps.size(); ++i) {
    const double d = cps[i]->delta();
    std::cout << "  cp" << i + 1 << ": delta = " << d
              << (d >= cps[i]->config().delta_max * 0.99
                      ? "  <-- starved, will not recover"
                      : "")
              << '\n';
  }
  std::cout << "\nDevice answered " << device.probes_received()
            << " probes; probe counter advanced to " << device.probe_counter()
            << " (Delta = " << device.delta() << " per probe).\n";
  (void)report;
  return 0;
}
