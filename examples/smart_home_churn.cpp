// Smart-home churn scenario — the workload the paper's introduction
// motivates: a UPnP-style network of consumer devices where control
// points (phones, remotes, TVs) come and go all day, and a device (a
// media server, say) must keep its probe load bounded regardless.
//
// We script a day-in-the-life CP population and compare the device load
// under SAPP vs DCPP.
#include <iostream>
#include <memory>

#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"
#include "trace/table.hpp"

using namespace probemon;

namespace {

scenario::ExperimentConfig make_config(scenario::Protocol protocol) {
  scenario::ExperimentConfig config;
  config.protocol = protocol;
  config.seed = 2026;
  config.initial_cps = 2;  // overnight: a couple of idle controllers
  config.metrics.load_window = 5.0;
  config.metrics.load_sample_every = 1.0;
  config.metrics.record_delay_series = false;
  return config;
}

std::unique_ptr<scenario::ScriptedChurn> day_in_the_life() {
  using Step = scenario::ScriptedChurn::Step;
  return std::make_unique<scenario::ScriptedChurn>(std::vector<Step>{
      {600.0, 8},    // morning: household phones wake up
      {1200.0, 4},   // everyone leaves for work
      {1800.0, 25},  // evening: guests arrive, every screen is on
      {2400.0, 30},  // movie night peak
      {3000.0, 3},   // midnight
  });
}

}  // namespace

int main() {
  std::cout << "Smart-home day-in-the-life: scripted CP population\n"
               "(2 -> 8 -> 4 -> 25 -> 30 -> 3), one media-server device.\n\n";

  trace::Table table({"protocol", "phase", "#CPs", "mean load (probes/s)",
                      "max load"});

  for (auto protocol : {scenario::Protocol::kSapp, scenario::Protocol::kDcpp}) {
    scenario::Experiment exp(make_config(protocol));
    exp.install_churn(day_in_the_life());
    exp.run_until(3600.0);
    exp.finish();

    struct Phase {
      const char* name;
      double t0, t1;
      int cps;
    };
    const Phase phases[] = {
        {"overnight", 100, 600, 2},   {"morning", 700, 1200, 8},
        {"workday", 1300, 1800, 4},   {"evening", 1900, 2400, 25},
        {"movie night", 2500, 3000, 30}, {"midnight", 3100, 3600, 3},
    };
    for (const auto& phase : phases) {
      const auto w = exp.metrics().device_load().series().summary(phase.t0,
                                                                  phase.t1);
      table.row()
          .cell(scenario::to_string(exp.config().protocol))
          .cell(phase.name)
          .cell(phase.cps)
          .cell(w.mean(), 2)
          .cell(w.max(), 1);
    }
  }
  table.print(std::cout);
  std::cout << "\nNote how DCPP pins the load at min(L_nom, 2k) in every "
               "phase while SAPP wanders within its tolerance band.\n";
  return 0;
}
