// Quickstart: monitor one device with five control points using DCPP,
// the paper's fair device-controlled probe protocol.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/probemon.hpp"

using namespace probemon;

int main() {
  // 1. A simulation world: scheduler + seeded RNG.
  des::Simulation sim(/*seed=*/1);

  // 2. The paper's network: three-mode stochastic delay, no loss,
  //    bounded 20 000-message buffer.
  auto network = net::Network::make_paper_default(sim.scheduler(), sim.rng());

  // 3. One device. DCPP's defaults: delta_min = 0.1 s (the device accepts
  //    at most L_nom = 10 probes/s) and d_min = 0.5 s (no CP probes more
  //    than f_max = 2 times/s). Entity state lives in a shared arena.
  core::EntityArena arena;
  core::DcppDevice device(sim, *network, arena, core::DcppDeviceConfig{});

  // 4. Five control points monitoring the device.
  std::vector<std::unique_ptr<core::DcppControlPoint>> cps;
  for (int i = 0; i < 5; ++i) {
    cps.push_back(std::make_unique<core::DcppControlPoint>(
        sim, *network, arena, device.id(), core::DcppCpConfig{}));
    cps.back()->start(/*initial_jitter=*/0.01 * i);
  }

  // 5. Run 60 virtual seconds.
  sim.run_until(60.0);

  std::cout << "after 60 s:\n";
  std::cout << "  device answered " << device.probes_received()
            << " probes (" << device.probes_received() / 60.0
            << " probes/s; cap is " << device.config().l_nom() << ")\n";
  for (std::size_t i = 0; i < cps.size(); ++i) {
    std::cout << "  cp" << i + 1 << ": " << cps[i]->cycle().cycles_succeeded()
              << " successful cycles, current wait "
              << cps[i]->current_delay() << " s, device present: "
              << (cps[i]->device_considered_present() ? "yes" : "no") << '\n';
  }

  // 6. The device crashes silently; every CP notices within its next
  //    probe cycle (bounded by the probing period + TOF + 3*TOS).
  device.go_silent();
  const double crash_time = sim.now();
  sim.run_until(crash_time + 5.0);

  std::cout << "after silent crash at t=" << crash_time << ":\n";
  for (std::size_t i = 0; i < cps.size(); ++i) {
    std::cout << "  cp" << i + 1 << " declared absence at t="
              << cps[i]->absence_time() << " (latency "
              << cps[i]->absence_time() - crash_time << " s)\n";
  }
  return 0;
}
