// Telemetry export — one registry observing both halves of the repo:
// the threaded runtime (transport, devices, PresenceService with
// per-watch RTT histograms and a probe-cycle tracer) and a DES run
// (scheduler event counters, speedup ratio). Ends by dumping the
// Prometheus text exposition to stdout — exactly what a scrape
// endpoint would serve — plus the JSON snapshot and the traced probe
// cycles to files under telemetry_out/. Wall-clock runtime: ~2 s.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "des/simulation.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "telemetry/bridges.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

using namespace probemon;
using namespace std::chrono_literals;

int main() {
  util::Logger::instance().set_level(util::LogLevel::kInfo);
  telemetry::Registry registry;
  telemetry::ProbeCycleTracer tracer(512);

  // ---- Part 1: the threaded runtime under observation. ----
  runtime::InProcTransportConfig net_config;
  net_config.delay_min = 0.0002;
  net_config.delay_max = 0.002;
  net_config.loss = 0.02;  // some loss, so retransmission counters move
  runtime::InProcTransport transport(net_config);
  transport.instrument(registry);

  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.02;
  device_config.d_min = 0.08;
  std::vector<std::unique_ptr<runtime::RtDcppDevice>> devices;
  for (int i = 0; i < 3; ++i) {
    devices.push_back(
        std::make_unique<runtime::RtDcppDevice>(transport, device_config));
    devices.back()->instrument(registry);
  }

  runtime::PresenceService::TelemetryOptions wiring;
  wiring.registry = &registry;
  wiring.tracer = &tracer;
  runtime::PresenceService service(transport, wiring);

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.030;
  cp_config.timeouts.tos = 0.020;
  for (const auto& device : devices) {
    service.watch_dcpp(device->id(), cp_config);
  }

  // The operator's live view: human-readable snapshots through the
  // logger while the run is in flight.
  telemetry::PeriodicReporter reporter(registry, /*period_s=*/0.5);
  reporter.start();

  std::cout << "watching " << service.watch_count()
            << " devices over the threaded runtime...\n";
  std::this_thread::sleep_for(700ms);

  std::cout << "device " << devices[1]->id()
            << " goes silent (exercises retransmissions, the absence "
               "counter and the detection-latency histogram)...\n";
  devices[1]->go_silent();
  std::this_thread::sleep_for(700ms);
  reporter.stop();

  // ---- Part 2: a DES run bound into the same registry. ----
  des::Simulation sim(7);
  telemetry::instrument_simulation(registry, sim, {{"run", "example"}});
  std::uint64_t fired = 0;
  for (int i = 0; i < 20000; ++i) {
    sim.after(0.001 * i, [&fired] { ++fired; });
  }
  sim.run_all();
  std::cout << "DES run executed " << fired << " events at "
            << sim.speedup_ratio() << "x realtime\n\n";

  // ---- Export. ----
  const std::string prometheus = telemetry::to_prometheus(registry);
  std::cout << "---- Prometheus text exposition ----\n" << prometheus;

  std::filesystem::create_directories("telemetry_out");
  {
    std::ofstream out("telemetry_out/metrics.json");
    out << telemetry::to_json(registry) << '\n';
  }
  {
    std::ofstream out("telemetry_out/probe_cycles.json");
    out << tracer.to_json() << '\n';
  }
  std::cout << "\nwrote telemetry_out/metrics.json and "
            << "telemetry_out/probe_cycles.json (" << tracer.recorded()
            << " probe cycles traced)\n";

  // Self-check: the exposition must cover all instrumented layers.
  const char* required[] = {
      "probemon_watch_probes_sent_total",
      "probemon_watch_rtt_seconds_bucket",
      "probemon_device_experienced_load",
      "probemon_des_events_executed_total",
      "probemon_transport_datagrams_sent_total",
      "probemon_presence_transitions_total",
  };
  bool ok = true;
  for (const char* name : required) {
    if (prometheus.find(name) == std::string::npos) {
      std::cout << "MISSING metric family: " << name << '\n';
      ok = false;
    }
  }
  std::cout << (ok ? "all expected metric families present."
                   : "exposition incomplete!")
            << '\n';
  return ok ? 0 : 1;
}
