// Telemetry export — one registry observing both halves of the repo:
// the threaded runtime (transport, devices, PresenceService with
// per-watch RTT histograms and a probe-cycle tracer) and a DES DCPP run
// (scheduler event counters plus the same probe-cycle traces,
// reassembled from protocol observer events). Ends by dumping the
// Prometheus text exposition to stdout — exactly what the HTTP
// /metrics route serves — plus the JSON snapshot and both trace rings
// (JSON and Chrome trace-event format, loadable in Perfetto /
// chrome://tracing) under telemetry_out/. Wall-clock runtime: ~2 s.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/probemon.hpp"
#include "des/simulation.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "telemetry/bridges.hpp"
#include "telemetry/export.hpp"
#include "telemetry/observer_adapter.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace probemon;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  // One-shot "dump the DES run as a Chrome trace" path; the runtime's
  // ring lands next to it with a .runtime suffix.
  const auto chrome_path = cli.get<std::string>(
      "chrome-trace", "telemetry_out/des_trace.chrome.json");
  cli.finish("telemetry_export: registry + tracer export demo");

  util::Logger::instance().set_level(util::LogLevel::kInfo);
  telemetry::Registry registry;
  telemetry::ProbeCycleTracer tracer(512);

  // ---- Part 1: the threaded runtime under observation. ----
  runtime::InProcTransportConfig net_config;
  net_config.delay_min = 0.0002;
  net_config.delay_max = 0.002;
  net_config.loss = 0.02;  // some loss, so retransmission counters move
  runtime::InProcTransport transport(net_config);
  transport.instrument(registry);

  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.02;
  device_config.d_min = 0.08;
  std::vector<std::unique_ptr<runtime::RtDcppDevice>> devices;
  for (int i = 0; i < 3; ++i) {
    devices.push_back(
        std::make_unique<runtime::RtDcppDevice>(transport, device_config));
    devices.back()->instrument(registry);
  }

  runtime::PresenceService::TelemetryOptions wiring;
  wiring.registry = &registry;
  wiring.tracer = &tracer;
  runtime::PresenceService service(transport, wiring);

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.030;
  cp_config.timeouts.tos = 0.020;
  for (const auto& device : devices) {
    service.watch_dcpp(device->id(), cp_config);
  }

  // The operator's live view: human-readable snapshots through the
  // logger while the run is in flight, plus a Prometheus snapshot kept
  // current on disk — the post-mortem artifact for long runs.
  std::filesystem::create_directories("telemetry_out");
  telemetry::PeriodicReporter reporter(registry, /*period_s=*/0.5);
  reporter.set_snapshot_file("telemetry_out/metrics.prom");
  reporter.start();

  std::cout << "watching " << service.watch_count()
            << " devices over the threaded runtime...\n";
  std::this_thread::sleep_for(700ms);

  std::cout << "device " << devices[1]->id()
            << " goes silent (exercises retransmissions, the absence "
               "counter and the detection-latency histogram)...\n";
  devices[1]->go_silent();
  std::this_thread::sleep_for(700ms);
  reporter.stop();

  // ---- Part 2: a DES run bound into the same registry. The protocol
  // events are reassembled into ProbeCycleTrace records by
  // CycleTraceObserver, so the simulation yields the same trace
  // artifact as the runtime above. ----
  des::Simulation sim(7);
  telemetry::instrument_simulation(registry, sim, {{"run", "example"}});
  telemetry::ProbeCycleTracer des_tracer(4096);
  telemetry::CycleTraceObserver des_observer(des_tracer);

  auto network = net::Network::make_paper_default(sim.scheduler(), sim.rng());
  core::EntityArena arena;
  core::DcppDevice sim_device(sim, *network, arena, core::DcppDeviceConfig{},
                              &des_observer);
  std::vector<std::unique_ptr<core::DcppControlPoint>> sim_cps;
  for (int i = 0; i < 5; ++i) {
    sim_cps.push_back(std::make_unique<core::DcppControlPoint>(
        sim, *network, arena, sim_device.id(), core::DcppCpConfig{}, &des_observer));
    sim_cps.back()->start(0.01 * i);
  }
  sim.run_until(30.0);
  sim_device.go_silent();
  sim.run_until(40.0);  // every CP declares absence -> failed cycles too
  std::cout << "DES run traced " << des_tracer.recorded()
            << " probe cycles at " << sim.speedup_ratio()
            << "x realtime\n\n";

  // ---- Export. ----
  const std::string prometheus = telemetry::to_prometheus(registry);
  std::cout << "---- Prometheus text exposition ----\n" << prometheus;

  std::filesystem::create_directories("telemetry_out");
  if (const auto dir = std::filesystem::path(chrome_path).parent_path();
      !dir.empty()) {
    std::filesystem::create_directories(dir);
  }
  {
    std::ofstream out("telemetry_out/metrics.json");
    out << telemetry::to_json(registry) << '\n';
  }
  {
    std::ofstream out("telemetry_out/probe_cycles.json");
    out << tracer.to_json() << '\n';
  }
  // Chrome trace-event dumps: open either file in Perfetto
  // (https://ui.perfetto.dev) or chrome://tracing.
  {
    std::ofstream out(chrome_path);
    out << des_tracer.to_chrome_trace() << '\n';
  }
  {
    std::ofstream out("telemetry_out/runtime_trace.chrome.json");
    out << tracer.to_chrome_trace() << '\n';
  }
  std::cout << "\nwrote telemetry_out/metrics.json, "
            << "telemetry_out/probe_cycles.json (" << tracer.recorded()
            << " runtime cycles), " << chrome_path << " ("
            << des_tracer.recorded()
            << " DES cycles, Chrome trace-event format) and "
            << "telemetry_out/runtime_trace.chrome.json\n";

  // Self-check: the exposition must cover all instrumented layers.
  const char* required[] = {
      "probemon_watch_probes_sent_total",
      "probemon_watch_rtt_seconds_bucket",
      "probemon_device_experienced_load",
      "probemon_des_events_executed_total",
      "probemon_transport_datagrams_sent_total",
      "probemon_presence_transitions_total",
  };
  bool ok = true;
  for (const char* name : required) {
    if (prometheus.find(name) == std::string::npos) {
      std::cout << "MISSING metric family: " << name << '\n';
      ok = false;
    }
  }
  std::cout << (ok ? "all expected metric families present."
                   : "exposition incomplete!")
            << '\n';
  return ok ? 0 : 1;
}
