// Real-time runtime demo — DCPP running against a wall clock, watched
// by a presence service with full observability: a metrics registry, a
// probe-cycle tracer, the protocol invariant auditor, and (with
// --http-port) a live HTTP endpoint serving /metrics, /metrics.json,
// /healthz, /watches and /trace while the fleet is probed. Shows the
// "implementable on small computing devices" half of the paper's claim
// with the operator's view attached.
//
//   realtime_runtime                       # 3 s demo, no HTTP
//   realtime_runtime --http-port=8080 --linger=60
//   curl localhost:8080/metrics            # Prometheus exposition
//   curl 'localhost:8080/trace?format=chrome' > trace.json  # Perfetto
//
// --transport picks the runtime:
//   inproc  — thread-per-component over the in-process transport
//             (injects delay and 2% loss, so retransmissions show up)
//   udp     — thread-per-component over real loopback UDP sockets
//   reactor — the event-loop runtime: ONE epoll thread, one batched
//             UDP socket (AsyncUdpTransport), every device and watch
//             as a callback on that loop — the configuration that
//             scales to 10^5 endpoints (bench_rt_scale). The bound
//             port is printed so tools/probemon_loadgen can stress it
//             from outside during --linger.
// Wall-clock runtime: about 3 seconds plus --linger.
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "runtime/event_loop/async_device.hpp"
#include "runtime/event_loop/async_presence.hpp"
#include "runtime/event_loop/async_udp.hpp"
#include "runtime/event_loop/event_loop.hpp"
#include "runtime/history_ticker.hpp"
#include "runtime/http_routes.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "runtime/udp_transport.hpp"
#include "telemetry/alerts/default_rules.hpp"
#include "telemetry/bridges.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/cli.hpp"

using namespace probemon;
using namespace std::chrono_literals;

namespace {

/// History sampling, default alert rules and the HTTP server — the
/// scaffolding every transport mode shares. The demo's detection
/// budget is d_min + TOF + 3*TOS (< 0.3 s).
struct ObservabilityStack {
  telemetry::TimeSeriesHistory history;
  telemetry::AlertEngine alerts;
  runtime::HistoryTicker ticker;
  telemetry::HttpServer http;

  ObservabilityStack(telemetry::Registry& registry, std::uint16_t port)
      : history(registry, {.sample_period_s = 0.1, .slots = 600}),
        alerts(&history),
        ticker(history, &alerts, 0.1),
        http({.port = port}) {
    telemetry::DefaultRuleParams rule_params;
    rule_params.detection_latency_budget_s = 0.3;
    rule_params.detection_latency_window_s = 30.0;
    rule_params.false_alarm_window_s = 30.0;
    for (const auto& [series, labels] : default_rule_series(rule_params)) {
      history.track(series, labels);
    }
    for (const auto& rule : default_presence_rules(rule_params)) {
      alerts.add_rule(rule);
    }
    alerts.bind_registry(registry);
    ticker.start();
  }

  void serve(runtime::ObservabilitySources sources) {
    sources.history = &history;
    sources.alerts = &alerts;
    runtime::register_observability_routes(http, sources);
    http.start();
    std::cout << "observability endpoint on http://127.0.0.1:" << http.port()
              << "  (try /metrics, /watches, /alerts, "
                 "/query?expr=probemon_watches, /trace?format=chrome)\n";
  }
};

template <typename Service>
std::size_t count_absent(const Service& service) {
  std::size_t absent = 0;
  for (const auto& info : service.snapshotWatches()) {
    if (info.state == runtime::Presence::kAbsent) ++absent;
  }
  return absent;
}

template <typename Service>
void print_watch_table(const Service& service) {
  for (const auto& info : service.snapshotWatches()) {
    std::cout << "  device " << info.device << ": "
              << to_string(info.state) << ", " << info.cycles_succeeded
              << " cycles, " << info.probes_sent << " probes, last rtt "
              << info.last_rtt << " s\n";
  }
}

/// The event-loop mode: one reactor thread, one batched UDP socket,
/// async devices and watches as loop callbacks.
int run_reactor(std::uint64_t n_devices, double duration_s,
                std::int64_t http_port, double linger_s,
                const core::DcppDeviceConfig& device_config,
                const core::DcppCpConfig& cp_config) {
  telemetry::Registry registry;
  telemetry::instrument_lock_order(registry);  // 0 unless a checked build
  telemetry::ProbeCycleTracer tracer(2048);
  check::InvariantAuditor auditor({}, &registry);

  runtime::EventLoop loop;
  loop.instrument(registry);
  runtime::AsyncUdpTransport transport(loop);
  transport.instrument(registry);

  std::vector<std::unique_ptr<runtime::AsyncDcppDevice>> devices;
  for (std::uint64_t i = 0; i < n_devices; ++i) {
    devices.push_back(
        std::make_unique<runtime::AsyncDcppDevice>(transport, device_config));
    devices.back()->instrument(registry);
  }

  runtime::AsyncPresenceService::TelemetryOptions wiring;
  wiring.registry = &registry;
  wiring.tracer = &tracer;
  wiring.auditor = &auditor;
  wiring.per_watch_metrics = true;  // small demo fleet: cardinality is fine
  runtime::AsyncPresenceService service(transport, wiring);
  service.subscribe([](const runtime::PresenceEvent& event) {
    std::cout << "  [t=" << event.t << "s] device " << event.device << " -> "
              << to_string(event.state) << '\n';
  });
  for (const auto& device : devices) {
    service.watch_dcpp(device->id(), cp_config);
  }

  ObservabilityStack obs(
      registry, static_cast<std::uint16_t>(http_port > 0 ? http_port : 0));
  if (http_port >= 0) {
    runtime::ObservabilitySources sources;
    sources.registry = &registry;
    sources.tracer = &tracer;
    sources.async_service = &service;
    sources.auditor = &auditor;
    obs.serve(sources);
  }

  loop.start();
  std::cout << "watching " << service.watch_count()
            << " devices on the reactor loop (UDP port "
            << transport.local_port() << ") for " << duration_s << " s...\n";
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));

  print_watch_table(service);

  std::cout << "\ndevice " << devices.back()->id()
            << " goes silent; its watch should notice within "
               "d_min + TOF + 3*TOS < 0.3 s...\n";
  devices.back()->go_silent();
  std::this_thread::sleep_for(600ms);

  const std::size_t absent = count_absent(service);
  std::cout << absent << " of " << devices.size()
            << " devices detected absent; " << tracer.recorded()
            << " probe cycles traced; " << auditor.total_violations()
            << " invariant violations\n";

  if (http_port >= 0 && linger_s > 0) {
    std::cout << "\nserving http://127.0.0.1:" << obs.http.port() << " for "
              << linger_s << " more seconds; probe the fleet with\n  "
              << "tools/probemon_loadgen --target="
              << transport.local_port() << " --rate=1000 --duration="
              << linger_s << "\n(ctrl-c to quit early)...\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  obs.http.stop();
  // Async devices/transport tear down loop-confined: stop the loop
  // first.
  loop.stop();
  return absent == 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto transport_name = cli.get<std::string>("transport", "inproc");
  const auto duration_s = cli.get<double>("duration", 2.0);
  const auto n_devices = cli.get<std::uint64_t>("devices", 4);
  // -1 = no HTTP; 0 = ephemeral port (printed); >0 = fixed port.
  const auto http_port = cli.get<std::int64_t>("http-port", -1);
  const auto linger_s = cli.get<double>("linger", 0.0);
  cli.finish(
      "realtime_runtime: threaded or event-loop DCPP runtime with live "
      "HTTP observability");

  // Fast timing so the demo completes in seconds: each device grants
  // ~50 probes/s total, each CP at most 12.5/s; timeouts scaled to
  // match.
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.02;
  device_config.d_min = 0.08;

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.030;
  cp_config.timeouts.tos = 0.020;

  if (transport_name == "reactor") {
    return run_reactor(n_devices, duration_s, http_port, linger_s,
                       device_config, cp_config);
  }

  telemetry::Registry registry;
  telemetry::instrument_lock_order(registry);  // 0 unless a checked build
  telemetry::ProbeCycleTracer tracer(2048);
  check::InvariantAuditor auditor({}, &registry);

  std::unique_ptr<runtime::Transport> transport;
  if (transport_name == "udp") {
    auto udp = std::make_unique<runtime::UdpTransport>();
    udp->instrument(registry);
    transport = std::move(udp);
  } else if (transport_name == "inproc") {
    runtime::InProcTransportConfig net_config;
    net_config.delay_min = 0.0005;
    net_config.delay_max = 0.003;
    net_config.loss = 0.02;  // 2% datagram loss: retransmissions cover it
    auto inproc = std::make_unique<runtime::InProcTransport>(net_config);
    inproc->instrument(registry);
    transport = std::move(inproc);
  } else {
    std::cerr << "unknown --transport '" << transport_name
              << "' (expected inproc, udp or reactor)\n";
    return 2;
  }

  std::vector<std::unique_ptr<runtime::RtDcppDevice>> devices;
  for (std::uint64_t i = 0; i < n_devices; ++i) {
    devices.push_back(
        std::make_unique<runtime::RtDcppDevice>(*transport, device_config));
    devices.back()->instrument(registry);
  }

  runtime::PresenceService::TelemetryOptions wiring;
  wiring.registry = &registry;
  wiring.tracer = &tracer;
  wiring.auditor = &auditor;
  runtime::PresenceService service(*transport, wiring);
  service.subscribe([](const runtime::PresenceEvent& event) {
    std::cout << "  [t=" << event.t << "s] device " << event.device << " -> "
              << to_string(event.state) << '\n';
  });
  for (const auto& device : devices) {
    service.watch_dcpp(device->id(), cp_config);
  }

  ObservabilityStack obs(
      registry, static_cast<std::uint16_t>(http_port > 0 ? http_port : 0));
  if (http_port >= 0) {
    runtime::ObservabilitySources sources;
    sources.registry = &registry;
    sources.tracer = &tracer;
    sources.service = &service;
    sources.auditor = &auditor;
    obs.serve(sources);
  }

  std::cout << "watching " << service.watch_count() << " devices over the "
            << transport_name << " transport for " << duration_s << " s...\n";
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));

  print_watch_table(service);

  std::cout << "\ndevice " << devices.back()->id()
            << " goes silent; its watch should notice within "
               "d_min + TOF + 3*TOS < 0.3 s...\n";
  devices.back()->go_silent();
  std::this_thread::sleep_for(600ms);

  const std::size_t absent = count_absent(service);
  std::cout << absent << " of " << devices.size()
            << " devices detected absent; " << tracer.recorded()
            << " probe cycles traced; " << auditor.total_violations()
            << " invariant violations\n";

  if (http_port >= 0 && linger_s > 0) {
    std::cout << "\nserving http://127.0.0.1:" << obs.http.port() << " for "
              << linger_s << " more seconds (ctrl-c to quit early)...\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  obs.http.stop();
  return absent == 1 ? 0 : 1;
}
