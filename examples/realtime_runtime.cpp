// Real-time runtime demo — the same DCPP protocol running on actual
// threads against a wall clock, through the in-process transport with
// delay and loss injection. Shows the "implementable on small computing
// devices" half of the paper's claim.
//
// Wall-clock runtime: about 3 seconds.
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "runtime/inproc_transport.hpp"
#include "runtime/rt_control_point.hpp"
#include "runtime/rt_device.hpp"

using namespace probemon;

int main() {
  // Fast timing so the demo completes in seconds: device grants
  // ~20 probes/s total, each CP at most 10/s; timeouts scaled to match.
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.05;  // L_nom = 20 probes/s
  device_config.d_min = 0.1;       // f_max = 10 probes/s per CP

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.030;
  cp_config.timeouts.tos = 0.020;

  runtime::InProcTransportConfig net_config;
  net_config.delay_min = 0.0005;
  net_config.delay_max = 0.003;
  net_config.loss = 0.02;  // 2% datagram loss: retransmissions cover it

  runtime::InProcTransport transport(net_config);
  runtime::RtDcppDevice device(transport, device_config);

  std::atomic<int> absences{0};
  runtime::RtControlPointBase::Callbacks callbacks;
  callbacks.on_absent = [&absences](net::NodeId, double t) {
    ++absences;
    std::cout << "  [t=" << t << "s] a CP declared the device absent\n";
  };

  std::vector<std::unique_ptr<runtime::RtDcppControlPoint>> cps;
  for (int i = 0; i < 4; ++i) {
    cps.push_back(std::make_unique<runtime::RtDcppControlPoint>(
        transport, device.id(), cp_config, callbacks));
    cps.back()->start();
  }

  std::cout << "4 CP threads probing 1 device thread over lossy in-proc "
               "transport for 2 s...\n";
  std::this_thread::sleep_for(std::chrono::seconds(2));

  std::cout << "device answered " << device.probes_received()
            << " probes (~" << device.probes_received() / 2 << "/s, cap "
            << 1.0 / device_config.delta_min << "/s)\n";
  for (std::size_t i = 0; i < cps.size(); ++i) {
    std::cout << "  cp" << i + 1 << ": " << cps[i]->cycles_succeeded()
              << " cycles, " << cps[i]->probes_sent() << " probes sent, "
              << "current wait " << cps[i]->current_delay() << " s\n";
  }

  std::cout << "\ndevice goes silent; CPs should all notice within "
               "d_min + TOF + 3*TOS < 0.3 s...\n";
  device.go_silent();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  std::cout << absences.load() << " of " << cps.size()
            << " CPs declared absence.\n";
  for (auto& cp : cps) cp->stop();
  std::cout << "transport: " << transport.sent_count() << " sent, "
            << transport.delivered_count() << " delivered, "
            << transport.dropped_count() << " dropped\n";
  return 0;
}
