// Failure detection end-to-end — a device crashes silently, CPs detect
// it via failed probe cycles, and the leave information spreads over the
// last-two-probers overlay (the dissemination extension the paper
// mentions in section 2 but does not analyze).
#include <algorithm>
#include <iostream>

#include "scenario/experiment.hpp"
#include "trace/table.hpp"

using namespace probemon;

int main() {
  constexpr std::size_t kCps = 15;
  constexpr double kCrashAt = 120.0;

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kDcpp;
  config.seed = 99;
  config.initial_cps = kCps;
  config.dissemination = true;      // gossip absence over the overlay
  config.dissemination_ttl = 3;

  scenario::Experiment exp(config);
  exp.schedule_device_departure(kCrashAt);
  exp.run_until(kCrashAt + 30.0);
  exp.finish();

  std::cout << "DCPP, " << kCps << " CPs, device crashes silently at t="
            << kCrashAt << " s, gossip dissemination ON (ttl 3).\n\n";

  trace::Table table({"CP", "how it learned", "t (s)",
                      "latency after crash (s)"});
  std::size_t by_probe = 0, by_gossip = 0;
  for (net::NodeId id : exp.initial_cp_ids()) {
    const auto* m = exp.metrics().cp(id);
    if (!m) continue;
    if (m->declared_absent_at &&
        (!m->learned_absent_at ||
         *m->declared_absent_at <= *m->learned_absent_at)) {
      ++by_probe;
      table.row()
          .cell("cp" + std::to_string(id))
          .cell("probe timeout")
          .cell(*m->declared_absent_at, 3)
          .cell(*m->declared_absent_at - kCrashAt, 3);
    } else if (m->learned_absent_at) {
      ++by_gossip;
      table.row()
          .cell("cp" + std::to_string(id))
          .cell("gossip notify")
          .cell(*m->learned_absent_at, 3)
          .cell(*m->learned_absent_at - kCrashAt, 3);
    }
  }
  table.print(std::cout);

  std::cout << '\n'
            << by_probe << " CPs detected by probing, " << by_gossip
            << " learned through the overlay before their own probe "
               "cycle failed.\n"
            << "Failed-cycle tail is TOF + 3*TOS = 0.085 s; probing-period "
               "bound is max(k*delta_min, d_min) = "
            << std::max(static_cast<double>(kCps) * 0.1, 0.5) << " s.\n";
  return 0;
}
