// Presence dashboard — the PresenceService facade watching a fleet of
// devices over the threaded runtime: some devices crash, the event
// stream announces it, and the table is rendered straight from
// PresenceService::snapshotWatches() — the same accessor the /watches
// HTTP route serves (pass --http-port to scrape it live with curl).
// Wall-clock runtime: about 2 seconds plus --linger.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/history_ticker.hpp"
#include "runtime/http_routes.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "telemetry/alerts/default_rules.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"

using namespace probemon;
using namespace std::chrono_literals;

namespace {

std::string fmt(double v, const char* unit = "") {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4g%s", v, unit);
  return buf;
}

/// The dashboard's table, straight from the service's snapshot — no
/// state duplicated through observer callbacks.
void print_watch_table(const runtime::PresenceService& service) {
  trace::Table table({"device", "presence", "last rtt", "fails", "probes",
                      "next probe due"});
  for (const auto& info : service.snapshotWatches()) {
    table.row()
        .cell(std::to_string(info.device))
        .cell(to_string(info.state))
        .cell(info.last_rtt > 0 ? fmt(info.last_rtt, " s") : "-")
        .cell(std::to_string(info.consecutive_failures))
        .cell(std::to_string(info.probes_sent))
        .cell(info.next_probe_due > 0 ? fmt(info.next_probe_due, " s") : "-");
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto http_port = cli.get<std::int64_t>("http-port", -1);
  const auto linger_s = cli.get<double>("linger", 0.0);
  cli.finish("presence_dashboard: PresenceService watching a device fleet");

  runtime::InProcTransportConfig net_config;
  net_config.delay_min = 0.0002;
  net_config.delay_max = 0.002;
  net_config.loss = 0.01;
  runtime::InProcTransport transport(net_config);

  // A fleet of six devices with quick DCPP schedules.
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.02;
  device_config.d_min = 0.08;
  std::vector<std::unique_ptr<runtime::RtDcppDevice>> devices;
  for (int i = 0; i < 6; ++i) {
    devices.push_back(
        std::make_unique<runtime::RtDcppDevice>(transport, device_config));
  }

  telemetry::Registry registry;
  telemetry::ProbeCycleTracer tracer(1024);
  runtime::PresenceService::TelemetryOptions wiring;
  wiring.registry = &registry;
  wiring.tracer = &tracer;
  runtime::PresenceService service(transport, wiring);

  std::atomic<int> events{0};
  service.subscribe([&](const runtime::PresenceEvent& event) {
    ++events;
    std::cout << "  [t=" << event.t << "s] device " << event.device << " -> "
              << to_string(event.state) << '\n';
  });

  // Sampled history + the shipped budget rules behind /query + /alerts
  // (budget: d_min + TOF + 3*TOS < 0.3 s for this demo's schedules).
  telemetry::TimeSeriesHistory history(registry,
                                       {.sample_period_s = 0.1, .slots = 600});
  telemetry::DefaultRuleParams rule_params;
  rule_params.detection_latency_budget_s = 0.3;
  rule_params.detection_latency_window_s = 30.0;
  rule_params.false_alarm_window_s = 30.0;
  for (const auto& [series, labels] : default_rule_series(rule_params)) {
    history.track(series, labels);
  }
  telemetry::AlertEngine alerts(&history);
  for (const auto& rule : default_presence_rules(rule_params)) {
    alerts.add_rule(rule);
  }
  alerts.bind_registry(registry);
  runtime::HistoryTicker ticker(history, &alerts, 0.1);
  ticker.start();

  telemetry::HttpServer http(
      {.port = static_cast<std::uint16_t>(http_port > 0 ? http_port : 0)});
  if (http_port >= 0) {
    runtime::ObservabilitySources sources;
    sources.registry = &registry;
    sources.tracer = &tracer;
    sources.service = &service;
    sources.history = &history;
    sources.alerts = &alerts;
    runtime::register_observability_routes(http, sources);
    http.start();
    std::cout << "dashboard also at http://127.0.0.1:" << http.port()
              << "/watches (and /alerts, /query)\n";
  }

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.030;
  cp_config.timeouts.tos = 0.020;
  for (const auto& device : devices) {
    service.watch_dcpp(device->id(), cp_config);
  }
  std::cout << "watching " << service.watch_count() << " devices...\n";
  std::this_thread::sleep_for(400ms);

  std::cout << "\ndevices 2 and 5 crash silently...\n";
  devices[1]->go_silent();
  devices[4]->go_silent();
  std::this_thread::sleep_for(600ms);

  print_watch_table(service);

  const auto stats = service.stats();
  std::cout << "\nservice totals: " << stats.probes_sent << " probes, "
            << stats.cycles_succeeded << " successful cycles, "
            << stats.cycles_failed << " failed cycles, " << events
            << " presence events\n";

  std::size_t absent = 0;
  for (const auto& info : service.snapshotWatches()) {
    if (info.state == runtime::Presence::kAbsent) ++absent;
  }
  std::cout << (absent == 2 ? "dashboard agrees with reality."
                            : "UNEXPECTED presence table!")
            << '\n';

  if (http_port >= 0 && linger_s > 0) {
    std::cout << "serving for " << linger_s << " more seconds...\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  http.stop();
  return absent == 2 ? 0 : 1;
}
