// Presence dashboard — the PresenceService facade watching a fleet of
// devices over the threaded runtime: some devices crash, one says
// goodbye politely, the dashboard's event stream and snapshot show it
// all. Wall-clock runtime: about 2 seconds.
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "runtime/inproc_transport.hpp"
#include "runtime/presence_service.hpp"
#include "runtime/rt_device.hpp"
#include "trace/table.hpp"

using namespace probemon;
using namespace std::chrono_literals;

int main() {
  runtime::InProcTransportConfig net_config;
  net_config.delay_min = 0.0002;
  net_config.delay_max = 0.002;
  net_config.loss = 0.01;
  runtime::InProcTransport transport(net_config);

  // A fleet of six devices with quick DCPP schedules.
  core::DcppDeviceConfig device_config;
  device_config.delta_min = 0.02;
  device_config.d_min = 0.08;
  std::vector<std::unique_ptr<runtime::RtDcppDevice>> devices;
  for (int i = 0; i < 6; ++i) {
    devices.push_back(
        std::make_unique<runtime::RtDcppDevice>(transport, device_config));
  }

  runtime::PresenceService service(transport);
  std::atomic<int> events{0};
  service.subscribe([&](const runtime::PresenceEvent& event) {
    ++events;
    std::cout << "  [t=" << event.t << "s] device " << event.device << " -> "
              << to_string(event.state) << '\n';
  });

  core::DcppCpConfig cp_config;
  cp_config.timeouts.tof = 0.030;
  cp_config.timeouts.tos = 0.020;
  for (const auto& device : devices) {
    service.watch_dcpp(device->id(), cp_config);
  }
  std::cout << "watching " << service.watch_count() << " devices...\n";
  std::this_thread::sleep_for(400ms);

  std::cout << "\ndevices 2 and 5 crash silently...\n";
  devices[1]->go_silent();
  devices[4]->go_silent();
  std::this_thread::sleep_for(600ms);

  trace::Table table({"device", "presence"});
  for (const auto& entry : service.snapshot()) {
    table.row().cell(std::to_string(entry.device)).cell(
        to_string(entry.state));
  }
  table.print(std::cout);

  const auto stats = service.stats();
  std::cout << "\nservice totals: " << stats.probes_sent << " probes, "
            << stats.cycles_succeeded << " successful cycles, "
            << stats.cycles_failed << " failed cycles, " << events
            << " presence events\n";

  std::size_t absent = 0;
  for (const auto& entry : service.snapshot()) {
    if (entry.state == runtime::Presence::kAbsent) ++absent;
  }
  std::cout << (absent == 2 ? "dashboard agrees with reality."
                            : "UNEXPECTED presence table!")
            << '\n';
  return absent == 2 ? 0 : 1;
}
